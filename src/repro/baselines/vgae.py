"""Variational Graph Auto-Encoder baseline (Kipf & Welling, 2016).

Two-layer GCN encoder producing ``mu``/``logvar``, reparameterised latent
codes, inner-product decoder, and the ELBO: reconstruction BCE on edges vs
sampled non-edges plus the KL term.
"""

from __future__ import annotations

import numpy as np

from repro import rng as rng_mod
from repro.baselines.common import LinkPredictionModel  # noqa: F401 (interface)
from repro.datasets.splits import LinkPredictionSplit
from repro.errors import NotFittedError
from repro.gnn.layers import GCNLayer
from repro.graph.sampling import sample_corrupted_targets
from repro.nn import Module
from repro.nn.functional import binary_cross_entropy_with_logits
from repro.tensor import Adam, Tensor, exp, gather_rows, no_grad, relu


class VGAEEncoder(Module):
    def __init__(self, in_dim: int, hidden_dim: int, latent_dim: int, rng) -> None:
        super().__init__()
        self.base = GCNLayer(in_dim, hidden_dim, rng)
        self.mu_layer = GCNLayer(hidden_dim, latent_dim, rng)
        self.logvar_layer = GCNLayer(hidden_dim, latent_dim, rng)

    def forward(self, x: Tensor, src, dst, n) -> tuple[Tensor, Tensor]:
        h = relu(self.base(x, src, dst, n))
        return self.mu_layer(h, src, dst, n), self.logvar_layer(h, src, dst, n)


class VGAELinkPredictor:
    """Fit the VGAE ELBO on the training graph; score pairs by ``σ(z_u·z_v)``."""

    name = "VGAE"

    def __init__(
        self,
        hidden_dim: int = 32,
        latent_dim: int = 16,
        epochs: int = 150,
        lr: float = 1e-2,
        kl_weight: float = 1e-2,
        seed: int = 0,
    ) -> None:
        self.hidden_dim = hidden_dim
        self.latent_dim = latent_dim
        self.epochs = epochs
        self.lr = lr
        self.kl_weight = kl_weight
        self.seed = seed
        self._mu: np.ndarray | None = None

    def fit(self, split: LinkPredictionSplit, features: np.ndarray) -> "VGAELinkPredictor":
        rng = rng_mod.ensure_rng(self.seed)
        graph = split.train_graph
        src, dst, _ = graph.directed_edges()
        n = graph.num_nodes
        x = Tensor(np.asarray(features, dtype=np.float64))
        encoder = VGAEEncoder(features.shape[1], self.hidden_dim, self.latent_dim, rng)
        optimizer = Adam(encoder.parameters(), lr=self.lr)

        pos_lo, pos_hi = graph.canonical_pairs()
        for _ in range(self.epochs):
            optimizer.zero_grad()
            mu, logvar = encoder(x, src, dst, n)
            noise = rng.normal(size=mu.shape)
            z = mu + exp(logvar * 0.5) * noise

            neg_targets = sample_corrupted_targets(pos_lo, n, 1, rng)[:, 0]
            pairs_u = np.concatenate([pos_lo, pos_lo])
            pairs_v = np.concatenate([pos_hi, neg_targets])
            labels = np.concatenate([np.ones(len(pos_lo)), np.zeros(len(pos_lo))])
            logits = (gather_rows(z, pairs_u) * gather_rows(z, pairs_v)).sum(axis=1)
            recon = binary_cross_entropy_with_logits(logits, labels)

            kl = (exp(logvar) + mu * mu - logvar - 1.0).sum() * (0.5 / n)
            loss = recon + self.kl_weight * kl
            loss.backward()
            optimizer.clip_grad_norm(5.0)
            optimizer.step()

        with no_grad():
            mu, _ = encoder(x, src, dst, n)
        self._mu = mu.data.copy()
        return self

    def predict_pairs(self, pairs: np.ndarray) -> np.ndarray:
        if self._mu is None:
            raise NotFittedError("VGAE has not been fitted")
        dots = (self._mu[pairs[:, 0]] * self._mu[pairs[:, 1]]).sum(axis=1)
        return 1.0 / (1.0 + np.exp(-np.clip(dots, -30, 30)))
