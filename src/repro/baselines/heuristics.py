"""Classical link-prediction heuristics on node pairs.

Common neighbours, Jaccard and Adamic-Adar — used both as standalone
reference predictors and as the pairwise interaction features of the
simplified PaGNN baseline.
"""

from __future__ import annotations

import numpy as np

from repro.graph.entity_graph import EntityGraph


def _neighbor_sets(graph: EntityGraph) -> list[set[int]]:
    return [set(graph.neighbors(v)[0].tolist()) for v in range(graph.num_nodes)]


def pairwise_heuristics(graph: EntityGraph, pairs: np.ndarray) -> np.ndarray:
    """Feature matrix ``(len(pairs), 4)``:

    columns = [common neighbours, Jaccard, Adamic-Adar, preferential attachment].
    """
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    nbrs = _neighbor_sets(graph)
    degrees = graph.degrees().astype(np.float64)
    out = np.zeros((len(pairs), 4))
    for i, (u, v) in enumerate(pairs):
        common = nbrs[int(u)] & nbrs[int(v)]
        union = nbrs[int(u)] | nbrs[int(v)]
        cn = float(len(common))
        jac = cn / len(union) if union else 0.0
        aa = float(sum(1.0 / np.log(max(degrees[w], 2.0)) for w in common))
        pa = degrees[int(u)] * degrees[int(v)]
        out[i] = (cn, jac, aa, np.log1p(pa))
    return out


class HeuristicLinkPredictor:
    """Adamic-Adar scores as a trivially strong reference point."""

    name = "AdamicAdar"

    def __init__(self) -> None:
        self._graph: EntityGraph | None = None

    def fit(self, split, features=None) -> "HeuristicLinkPredictor":
        self._graph = split.train_graph
        return self

    def predict_pairs(self, pairs: np.ndarray) -> np.ndarray:
        scores = pairwise_heuristics(self._graph, pairs)[:, 2]
        # Squash to (0, 1) so thresholded metrics are meaningful.
        return 1.0 - np.exp(-scores)
