"""PaGNN baseline (Yang et al., 2021), simplified.

The original PaGNN performs *interactive structure learning*: for every
candidate pair it broadcasts the source node into the target's neighbourhood
so the GNN sees pairwise structure. Running a per-pair GNN at benchmark
scale is what SEAL already exercises, so our PaGNN keeps the pairwise-
interaction idea in a cheaper form: a shared GraphSAGE encoder provides node
embeddings, and the pair scorer additionally consumes explicit pairwise
interaction features (common neighbours, Jaccard, Adamic-Adar, preferential
attachment) computed on the training graph — the structural signal the
broadcast mechanism extracts. The simplification is recorded in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro import rng as rng_mod
from repro.baselines.heuristics import pairwise_heuristics
from repro.datasets.splits import LinkPredictionSplit
from repro.errors import NotFittedError
from repro.gnn.encoder import GNNEncoder
from repro.graph.entity_graph import EntityGraph
from repro.nn import MLP, Module
from repro.nn.functional import binary_cross_entropy_with_logits
from repro.tensor import Adam, Tensor, concat, gather_rows, no_grad, sigmoid


class _PaGNNScorer(Module):
    def __init__(self, dim: int, num_pair_features: int, rng) -> None:
        super().__init__()
        self.mlp = MLP([2 * dim + num_pair_features, 32, 1], rng=rng)

    def forward(self, z: Tensor, pairs: np.ndarray, pair_features: np.ndarray) -> Tensor:
        left = gather_rows(z, pairs[:, 0])
        right = gather_rows(z, pairs[:, 1])
        feats = Tensor(pair_features)
        return self.mlp(concat([left, right, feats], axis=1)).reshape(len(pairs))


class PaGNNLinkPredictor:
    name = "PaGNN"

    def __init__(
        self,
        hidden_dim: int = 32,
        epochs: int = 40,
        lr: float = 5e-3,
        seed: int = 0,
    ) -> None:
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._graph: EntityGraph | None = None
        self._embeddings: np.ndarray | None = None
        self._scorer: _PaGNNScorer | None = None
        self._feature_scale: np.ndarray | None = None

    def fit(self, split: LinkPredictionSplit, features: np.ndarray) -> "PaGNNLinkPredictor":
        rng = rng_mod.ensure_rng(self.seed)
        self._graph = split.train_graph
        src, dst, _ = self._graph.directed_edges()
        n = self._graph.num_nodes
        x = Tensor(np.asarray(features, dtype=np.float64))

        encoder = GNNEncoder("sage", features.shape[1], self.hidden_dim, num_layers=2, rng=rng)
        pairs, labels = split.train_pairs_and_labels()
        pair_feats = pairwise_heuristics(self._graph, pairs)
        self._feature_scale = np.maximum(pair_feats.std(axis=0), 1e-6)
        pair_feats = pair_feats / self._feature_scale
        self._scorer = _PaGNNScorer(self.hidden_dim, pair_feats.shape[1], rng)

        optimizer = Adam(encoder.parameters() + self._scorer.parameters(), lr=self.lr)
        batch = 4096
        for _ in range(self.epochs):
            order = rng.permutation(len(pairs))
            for start in range(0, len(order), batch):
                idx = order[start : start + batch]
                optimizer.zero_grad()
                z = encoder(x, src, dst, n)
                logits = self._scorer(z, pairs[idx], pair_feats[idx])
                loss = binary_cross_entropy_with_logits(logits, labels[idx])
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()

        with no_grad():
            z = encoder(x, src, dst, n)
        self._embeddings = z.data.copy()
        return self

    def predict_pairs(self, pairs: np.ndarray) -> np.ndarray:
        if self._embeddings is None:
            raise NotFittedError("PaGNN has not been fitted")
        pair_feats = pairwise_heuristics(self._graph, pairs) / self._feature_scale
        with no_grad():
            logits = self._scorer(Tensor(self._embeddings), pairs, pair_feats)
            return sigmoid(logits).data
