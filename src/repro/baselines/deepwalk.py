"""DeepWalk baseline (Perozzi et al., 2014): uniform walks + Skip-gram."""

from __future__ import annotations

import numpy as np

from repro.baselines.common import EmbeddingLinkPredictor
from repro.datasets.splits import LinkPredictionSplit
from repro.embeddings.skipgram import SkipGramConfig, SkipGramModel
from repro.graph.sampling import random_walks


class DeepWalkLinkPredictor(EmbeddingLinkPredictor):
    """Train SGNS on uniform random walks over the training graph."""

    def __init__(
        self,
        num_walks: int = 5,
        walk_length: int = 12,
        dim: int = 32,
        epochs: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(name="DeepWalk", embeddings=np.zeros((1, dim)), seed=seed)
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.dim = dim
        self.sg_epochs = epochs

    def fit(self, split: LinkPredictionSplit, features: np.ndarray | None = None) -> "DeepWalkLinkPredictor":
        graph = split.train_graph
        walks = random_walks(
            graph, self.num_walks, self.walk_length, rng=self.seed, weighted=False
        )
        model = SkipGramModel(
            graph.num_nodes,
            SkipGramConfig(dim=self.dim, window=4, epochs=self.sg_epochs, seed=self.seed),
        ).fit(walks, rng=self.seed + 1)
        self.embeddings = model.normalized_vectors()
        return super().fit(split)
