"""Graph structural metrics."""

import numpy as np
import pytest

from repro.graph import (
    EntityGraph,
    connected_components,
    degree_histogram,
    local_clustering,
    mean_clustering,
    summarize_graph,
)


@pytest.fixture()
def two_triangles():
    # Triangle 0-1-2, triangle 3-4-5, isolated node 6.
    return EntityGraph.from_edge_list(
        7, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    )


class TestComponents:
    def test_counts_components(self, two_triangles):
        components = connected_components(two_triangles)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3, 3]

    def test_components_partition_nodes(self, two_triangles):
        components = connected_components(two_triangles)
        all_nodes = sorted(n for c in components for n in c)
        assert all_nodes == list(range(7))

    def test_empty_graph(self):
        g = EntityGraph.from_edge_list(3, [])
        assert len(connected_components(g)) == 3


class TestClustering:
    def test_triangle_is_fully_clustered(self, two_triangles):
        assert local_clustering(two_triangles, 0) == 1.0

    def test_path_has_zero_clustering(self):
        g = EntityGraph.from_edge_list(3, [(0, 1), (1, 2)])
        assert local_clustering(g, 1) == 0.0

    def test_degree_below_two_is_zero(self, two_triangles):
        assert local_clustering(two_triangles, 6) == 0.0

    def test_mean_clustering_matches_networkx(self, two_triangles):
        import networkx as nx

        ours = mean_clustering(two_triangles, sample=None)
        theirs = nx.average_clustering(two_triangles.to_networkx())
        assert ours == pytest.approx(theirs)

    def test_sampled_clustering_runs(self, two_triangles):
        value = mean_clustering(two_triangles, sample=3)
        assert 0.0 <= value <= 1.0


class TestSummary:
    def test_summary_fields(self, two_triangles):
        summary = summarize_graph(two_triangles)
        assert summary.num_nodes == 7
        assert summary.num_edges == 6
        assert summary.isolated_nodes == 1
        assert summary.num_components == 3
        assert summary.largest_component == 3
        assert summary.max_degree == 2
        assert summary.density == pytest.approx(6 / 21)
        assert "components 3" in summary.to_text()

    def test_mined_graph_is_clustered(self, candidate, world):
        # Topic structure should produce clustering far above an ER graph
        # of the same density.
        summary = summarize_graph(candidate.graph)
        assert summary.mean_clustering > summary.density * 2


class TestHistogram:
    def test_degree_histogram_total(self, two_triangles):
        counts, edges = degree_histogram(two_triangles, num_bins=3)
        assert counts.sum() == 7
        assert len(edges) == 4
