"""Request context: ambient binding, annotations, deadlines, journeys."""

import json

import pytest

from repro.obs.context import (
    JourneyLog,
    RequestContext,
    annotate,
    bind_context,
    current_context,
    current_correlation_id,
    next_correlation_id,
    unbind_context,
)


class _Response:
    def __init__(self, ok=True, code=None, elapsed_ms=1.5):
        self.ok = ok
        self.code = code
        self.elapsed_ms = elapsed_ms
        self.timestamp = 5_000.0
        self.graph_version = 3
        self.preference_version = 2


class _View:
    hop_sizes = (1, 4, 9)


class TestAmbientBinding:
    def test_no_context_outside_any_request(self):
        assert current_context() is None
        assert current_correlation_id() is None

    def test_bind_unbind_roundtrip(self):
        ctx = RequestContext()
        ctx.correlation_id = next_correlation_id()
        token = bind_context(ctx)
        try:
            assert current_context() is ctx
            assert current_correlation_id() == ctx.correlation_id
        finally:
            unbind_context(token)
        assert current_context() is None

    def test_correlation_ids_are_unique_and_increasing(self):
        first = next_correlation_id()
        second = next_correlation_id()
        assert second == first + 1

    def test_annotate_is_noop_outside_a_request(self):
        annotate(cache="miss")  # must not raise and must not leak anywhere
        assert current_context() is None

    def test_annotate_lazily_creates_the_dict(self):
        ctx = RequestContext()
        token = bind_context(ctx)
        try:
            assert ctx.annotations is None
            annotate(cache="miss")
            annotate(degraded="preference_read_open")
            assert ctx.annotations == {
                "cache": "miss",
                "degraded": "preference_read_open",
            }
        finally:
            unbind_context(token)


class TestDeadlineStamping:
    def test_deadline_from_an_earlier_request_is_not_returned(self):
        ctx = RequestContext()
        ctx.correlation_id = 10
        ctx.deadline = (10, "deadline-object")
        assert ctx.current_deadline() == "deadline-object"
        # Next request re-stamps the id but not the deadline: stale.
        ctx.correlation_id = 11
        assert ctx.current_deadline() is None


class TestJourneyLog:
    def _record(self, correlation_id=1, endpoint="expand", trace_id=7,
                response=None, view=None, annotations=None):
        # Mirrors the API facade: envelope and span scalars ride in the
        # record so the ring retains neither the response nor the span.
        response = response or _Response()
        return (
            correlation_id,
            endpoint,
            trace_id,
            response.timestamp,
            response.elapsed_ms,
            response.ok,
            response.code,
            response.graph_version,
            response.preference_version,
            view,
            annotations,
        )

    def test_render_basic_fields(self):
        log = JourneyLog()
        log.append(self._record(correlation_id=42, view=_View()))
        (journey,) = log.tail()
        assert journey["correlation_id"] == 42
        assert journey["trace_id"] == 7
        assert journey["endpoint"] == "expand"
        assert journey["tenant"] == "default"
        assert journey["ts"] == 5_000.0
        assert journey["duration_ms"] == 1.5
        assert journey["ok"] is True
        assert journey["graph_version"] == 3
        assert journey["preference_version"] == 2

    def test_unannotated_ok_expand_renders_as_cache_hit(self):
        log = JourneyLog()
        log.append(self._record(view=_View()))
        (journey,) = log.tail()
        assert journey["cache"] == "hit"
        assert journey["hops"] == [1, 4, 9]

    def test_miss_annotation_wins_over_hit_inference(self):
        log = JourneyLog()
        log.append(self._record(view=_View(), annotations={"cache": "miss"}))
        (journey,) = log.tail()
        assert journey["cache"] == "miss"

    def test_failed_expand_renders_no_hops_and_no_cache_claim(self):
        response = _Response(ok=False, code="bad_request")
        log = JourneyLog()
        log.append(self._record(response=response, view=_View()))
        (journey,) = log.tail()
        assert journey["hops"] is None
        assert journey["cache"] is None
        assert journey["ok"] is False and journey["code"] == "bad_request"

    def test_shed_flag_derived_from_response_code(self):
        log = JourneyLog()
        for code, shed in [
            ("circuit_open", True),
            ("deadline_exceeded", True),
            ("bad_request", False),
            (None, False),
        ]:
            log.clear()
            log.append(self._record(response=_Response(ok=False, code=code)))
            assert log.tail()[0]["shed"] is shed

    def test_degraded_flag_from_annotations(self):
        log = JourneyLog()
        log.append(self._record(annotations={"degraded": "preference_read_open"}))
        assert log.tail()[0]["degraded"] is True

    def test_endpoint_passes_through_verbatim(self):
        log = JourneyLog()
        log.append(self._record(endpoint="replay.expand"))
        assert log.tail()[0]["endpoint"] == "replay.expand"

    def test_ring_is_bounded_and_tail_limits(self):
        log = JourneyLog(capacity=3)
        for i in range(5):
            log.append(self._record(correlation_id=i))
        assert len(log) == 3
        assert [j["correlation_id"] for j in log.tail()] == [2, 3, 4]
        assert [j["correlation_id"] for j in log.tail(2)] == [3, 4]
        assert log.tail(0) == []

    def test_ndjson_is_one_json_object_per_line(self):
        log = JourneyLog()
        log.append(self._record(correlation_id=1))
        log.append(self._record(correlation_id=2))
        lines = log.to_ndjson().splitlines()
        assert [json.loads(line)["correlation_id"] for line in lines] == [1, 2]
        assert log.to_ndjson(0) == ""
