"""SLO rolling windows, error-budget burn rate, and the alert engine."""

import pytest

from repro.errors import ConfigError
from repro.obs import (
    AlertManager,
    AlertRule,
    ManualClock,
    MetricsRegistry,
    SLObjective,
    SLOTracker,
    default_alert_rules,
    default_objectives,
)


@pytest.fixture()
def clock():
    return ManualClock(start=10_000.0)


@pytest.fixture()
def registry():
    return MetricsRegistry()


def _tracker(registry, clock, window=3600.0):
    objectives = [
        SLObjective(
            name="avail", kind="availability", target=0.995, window_seconds=window
        ),
        SLObjective(name="lat", kind="latency", target=0.25, percentile=0.99),
    ]
    return SLOTracker(objectives, registry, clock=clock)


class TestObjectiveValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            SLObjective(name="x", kind="throughput", target=1.0)

    def test_availability_target_must_be_fractional(self):
        with pytest.raises(ConfigError):
            SLObjective(name="x", kind="availability", target=1.0)

    def test_defaults_are_valid(self):
        names = [o.name for o in default_objectives()]
        assert names == ["api-availability", "api-latency-p99"]


class TestAvailabilityWindow:
    def test_no_traffic_reports_none_and_is_met(self, registry, clock):
        tracker = _tracker(registry, clock)
        result = tracker.evaluate()
        avail = result["objectives"][0]
        assert avail["availability"] is None
        assert avail["met"]
        assert "availability" not in result["signals"]

    def test_all_ok_traffic_is_full_availability(self, registry, clock):
        tracker = _tracker(registry, clock)
        tracker.evaluate()  # baseline sample at t0
        registry.counter("api_requests_total", endpoint="e", status="ok").inc(100)
        clock.advance(60)
        result = tracker.evaluate()
        assert result["signals"]["availability"] == 1.0
        assert result["signals"]["error_budget_burn_rate"] == 0.0
        assert result["signals"]["window_requests"] == 100

    def test_burn_rate_is_error_rate_over_budget(self, registry, clock):
        tracker = _tracker(registry, clock)
        tracker.evaluate()
        registry.counter("api_requests_total", endpoint="e", status="ok").inc(90)
        registry.counter("api_requests_total", endpoint="e", status="error").inc(10)
        clock.advance(60)
        result = tracker.evaluate()
        # 10% errors against a 0.5% budget: burning 20x.
        assert result["signals"]["availability"] == pytest.approx(0.9)
        assert result["signals"]["error_budget_burn_rate"] == pytest.approx(20.0)
        assert not result["objectives"][0]["met"]

    def test_old_traffic_ages_out_of_the_window(self, registry, clock):
        tracker = _tracker(registry, clock, window=100.0)
        ok = registry.counter("api_requests_total", endpoint="e", status="ok")
        err = registry.counter("api_requests_total", endpoint="e", status="error")
        err.inc(50)  # ancient failures
        tracker.evaluate()
        clock.advance(200)  # push the failure sample past the window edge
        tracker.evaluate()
        ok.inc(10)
        clock.advance(50)
        result = tracker.evaluate()
        # Only the post-edge delta counts: 10 ok, 0 new errors.
        assert result["signals"]["availability"] == 1.0
        assert result["signals"]["window_requests"] == 10

    def test_latency_objective_merges_endpoint_series(self, registry, clock):
        tracker = _tracker(registry, clock)
        a = registry.histogram("api_request_seconds", endpoint="expand")
        b = registry.histogram("api_request_seconds", endpoint="target")
        for _ in range(90):
            a.observe(0.01)
        for _ in range(10):
            b.observe(2.0)  # slow tail lives in the other series
        result = tracker.evaluate()
        lat = result["objectives"][1]
        assert lat["observed_seconds"] > 0.25
        assert not lat["met"]
        assert result["signals"]["latency_p99"] == lat["observed_seconds"]

    def test_latency_with_no_histogram_is_met(self, registry, clock):
        tracker = _tracker(registry, clock)
        lat = tracker.evaluate()["objectives"][1]
        assert lat["observed_seconds"] is None and lat["met"]


class TestAlertRules:
    def test_unknown_comparator_rejected(self):
        with pytest.raises(ConfigError):
            AlertRule(name="x", signal="s", op="~", threshold=1.0)

    def test_duplicate_rule_name_rejected(self, clock):
        manager = AlertManager([], clock=clock)
        manager.add_rule(AlertRule(name="a", signal="s", op=">", threshold=1.0))
        with pytest.raises(ConfigError):
            manager.add_rule(AlertRule(name="a", signal="s", op=">", threshold=2.0))

    def test_default_rules_cover_drift_and_burn(self):
        names = {r.name for r in default_alert_rules()}
        assert {"error-budget-fast-burn", "critical-drift",
                "latency-p99-breach"} <= names


class TestAlertLifecycle:
    @pytest.fixture()
    def manager(self, clock, registry):
        rules = [
            AlertRule(name="burn", signal="burn_rate", op=">=", threshold=10.0,
                      severity="critical"),
            AlertRule(name="lat", signal="latency_p99", op=">", threshold=0.25),
        ]
        return AlertManager(rules, clock=clock, metrics=registry)

    def test_breach_fires_and_recovery_resolves(self, manager, clock):
        fired = manager.evaluate({"burn_rate": 15.0})
        assert [e["state"] for e in fired] == ["firing"]
        assert manager.has_critical()
        active = manager.active()
        assert active[0]["rule"] == "burn" and active[0]["since"] == 10_000.0

        clock.advance(60)
        resolved = manager.evaluate({"burn_rate": 1.0})
        assert [e["state"] for e in resolved] == ["resolved"]
        assert manager.active() == []
        states = [e["state"] for e in manager.events()]
        assert states == ["firing", "resolved"]

    def test_steady_state_produces_no_transitions(self, manager):
        manager.evaluate({"burn_rate": 15.0})
        assert manager.evaluate({"burn_rate": 16.0}) == []  # still firing
        assert len(manager.events()) == 1

    def test_missing_signal_keeps_previous_state(self, manager):
        manager.evaluate({"burn_rate": 15.0})
        assert manager.evaluate({}) == []  # no data is not recovery
        assert manager.has_critical()

    def test_for_cycles_suppresses_blips(self, clock):
        manager = AlertManager(
            [AlertRule(name="flap", signal="s", op=">", threshold=1.0,
                       for_cycles=3)],
            clock=clock,
        )
        assert manager.evaluate({"s": 5.0}) == []
        assert manager.evaluate({"s": 5.0}) == []
        fired = manager.evaluate({"s": 5.0})  # third consecutive breach
        assert [e["state"] for e in fired] == ["firing"]
        # A single good sample resets the consecutive-breach counter.
        manager.evaluate({"s": 0.0})
        assert manager.evaluate({"s": 5.0}) == []

    def test_transition_metrics_and_gauges(self, manager, registry):
        manager.evaluate({"burn_rate": 15.0, "latency_p99": 0.5})
        assert registry.get_value(
            "alert_transitions_total", rule="burn", state="firing"
        ) == 1
        assert registry.get_value("alerts_firing", severity="critical") == 1
        assert registry.get_value("alerts_firing", severity="warning") == 1
        manager.evaluate({"burn_rate": 0.0, "latency_p99": 0.1})
        assert registry.get_value("alerts_firing", severity="critical") == 0

    def test_snapshot_is_json_shaped(self, manager):
        import json

        manager.evaluate({"burn_rate": 15.0})
        snapshot = manager.snapshot()
        json.dumps(snapshot)
        assert {r["name"] for r in snapshot["rules"]} == {"burn", "lat"}
        assert snapshot["active"][0]["rule"] == "burn"
        assert snapshot["events"][0]["state"] == "firing"
