"""Link-prediction splits and benchmark dataset sampling."""

import numpy as np
import pytest

from repro.datasets import (
    DEFAULT_SAMPLING_RATIOS,
    build_dataset_m,
    make_link_prediction_split,
    sample_sub_datasets,
    WorldConfig,
    BehaviorConfig,
)
from repro.errors import ConfigError


class TestSplit:
    def test_sizes_follow_protocol(self, candidate):
        split = make_link_prediction_split(candidate.graph, test_fraction=0.1, rng=0)
        total = candidate.graph.num_edges
        assert len(split.test_pos) == round(total * 0.1)
        assert split.train_graph.num_edges == total - len(split.test_pos)
        assert len(split.test_neg) == len(split.test_pos)
        assert len(split.train_neg) == round(len(split.train_pos) * 3.0)

    def test_train_graph_excludes_test_edges(self, split):
        for u, v in split.test_pos[:100]:
            assert not split.train_graph.has_edge(int(u), int(v))

    def test_negatives_are_non_edges(self, candidate, split):
        for u, v in split.test_neg[:100]:
            assert not candidate.graph.has_edge(int(u), int(v))
        for u, v in split.train_neg[:100]:
            assert not candidate.graph.has_edge(int(u), int(v))

    def test_test_and_train_negatives_disjoint(self, split):
        test_keys = {tuple(p) for p in split.test_neg}
        train_keys = {tuple(p) for p in split.train_neg}
        assert not (test_keys & train_keys)

    def test_pairs_and_labels_helpers(self, split):
        pairs, labels = split.train_pairs_and_labels()
        assert len(pairs) == len(split.train_pos) + len(split.train_neg)
        assert labels[: len(split.train_pos)].all()
        assert not labels[len(split.train_pos) :].any()

    def test_invalid_fraction(self, candidate):
        with pytest.raises(ConfigError):
            make_link_prediction_split(candidate.graph, test_fraction=0.0)


class TestBenchmarkDatasets:
    @pytest.fixture(scope="class")
    def bundle(self):
        return build_dataset_m(
            WorldConfig(num_entities=120, num_users=80, seed=1),
            BehaviorConfig(num_days=10, seed=2),
        )

    def test_bundle_has_candidate_graph(self, bundle):
        assert bundle.graph.num_edges > 0
        assert bundle.candidate.node_features.shape[0] == bundle.world.num_entities

    def test_sampled_sizes_track_ratios(self, bundle):
        datasets = sample_sub_datasets(bundle, seed=3)
        sizes = {name: ds.num_entities for name, ds in datasets.items()}
        assert sizes["A"] > sizes["C"] > sizes["B"]
        for name, ratio in DEFAULT_SAMPLING_RATIOS.items():
            expected = round(bundle.graph.num_nodes * ratio)
            assert abs(sizes[name] - expected) <= 1

    def test_features_aligned_with_subgraph(self, bundle):
        datasets = sample_sub_datasets(bundle, seed=3)
        ds = datasets["B"]
        assert ds.features.shape[0] == ds.num_entities
        original = bundle.candidate.node_features[ds.node_ids]
        np.testing.assert_allclose(ds.features, original)

    def test_invalid_ratio_raises(self, bundle):
        with pytest.raises(ConfigError):
            sample_sub_datasets(bundle, ratios={"X": 1.5})
