"""Cross-module property tests on randomly generated graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import EntityGraph, k_hop_expansion, k_hop_subgraph
from repro.preference import PreferenceStore
from repro.text.sequence_extractor import UserEntitySequence


def graph_strategy(max_nodes: int = 12):
    @st.composite
    def build(draw):
        n = draw(st.integers(3, max_nodes))
        m = draw(st.integers(1, min(20, n * (n - 1) // 2)))
        rng = np.random.default_rng(draw(st.integers(0, 10_000)))
        pairs = set()
        while len(pairs) < m:
            u, v = rng.integers(0, n, size=2)
            if u != v:
                pairs.add((min(int(u), int(v)), max(int(u), int(v))))
        weights = rng.uniform(0.05, 1.0, size=len(pairs))
        return EntityGraph.from_edge_list(n, sorted(pairs), weights)

    return build()


class TestKHopProperties:
    @given(graph_strategy(), st.integers(0, 4), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_scores_bounded_and_paths_valid(self, graph, depth, seed_choice):
        seed = seed_choice % graph.num_nodes
        result = k_hop_expansion(graph, [seed], depth)
        for node, score in result.scores.items():
            assert 0 < score <= 1.0 + 1e-12
            path = result.path_to(node)
            assert path[0] == seed and path[-1] == node
            for a, b in zip(path, path[1:]):
                assert graph.has_edge(a, b)

    @given(graph_strategy(), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_deeper_expansion_is_superset(self, graph, seed_choice):
        seed = seed_choice % graph.num_nodes
        shallow = set(k_hop_expansion(graph, [seed], 1).scores)
        deep = set(k_hop_expansion(graph, [seed], 3).scores)
        assert shallow <= deep

    @given(graph_strategy(), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_subgraph_nodes_match_expansion(self, graph, seed_choice):
        seed = seed_choice % graph.num_nodes
        sub, expansion, node_ids = k_hop_subgraph(graph, [seed], 2)
        assert set(node_ids.tolist()) == set(expansion.scores)
        assert sub.num_nodes == len(node_ids)
        # Every subgraph edge exists in the parent graph.
        lo, hi = sub.canonical_pairs()
        for a, b in zip(lo, hi):
            assert graph.has_edge(int(node_ids[a]), int(node_ids[b]))


class TestGraphSetProperties:
    @given(graph_strategy(), graph_strategy())
    @settings(max_examples=25, deadline=None)
    def test_union_contains_both(self, a, b):
        n = max(a.num_nodes, b.num_nodes)

        def lift(g):
            lo, hi = g.canonical_pairs()
            return EntityGraph(n, lo, hi, g.weight, g.relation)

        a, b = lift(a), lift(b)
        merged = a.union(b)
        assert merged.edge_key_set() == a.edge_key_set() | b.edge_key_set()

    @given(graph_strategy())
    @settings(max_examples=25, deadline=None)
    def test_remove_then_check_disjoint(self, graph):
        lo, hi = graph.canonical_pairs()
        half = [(int(a), int(b)) for a, b in zip(lo[::2], hi[::2])]
        pruned = graph.remove_edges(half)
        assert pruned.edge_key_set() == graph.edge_key_set() - set(half)


class TestPreferenceBruteForce:
    @given(st.integers(0, 500), st.integers(2, 8), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_topk_matches_bruteforce(self, seed, num_entities, k):
        rng = np.random.default_rng(seed)
        num_users = 6
        embeddings = rng.normal(size=(num_entities, 4))
        sequences = {
            u: UserEntitySequence(u, list(rng.integers(0, num_entities, size=3)))
            for u in range(num_users - 1)  # one user stays uncovered
        }
        store = PreferenceStore(embeddings, direct_weight=2.0).build(sequences, num_users)
        ids = list(rng.choice(num_entities, size=min(3, num_entities), replace=False))

        per = store.user_matrix @ store.entity_embeddings[np.array(ids)].T
        per = per + store.direct_weight * store._interaction[:, np.array(ids)]
        brute = per.mean(axis=1)
        brute[~store.covered_users] = -np.inf
        expected = np.argsort(-brute)[: min(k, num_users - 1)]

        actual = [u.user_id for u in store.top_users_for_entities(ids, k=k)]
        # Order can differ on exact ties; compare score multisets instead.
        np.testing.assert_allclose(
            sorted(brute[expected]), sorted(brute[actual]), atol=1e-12
        )
