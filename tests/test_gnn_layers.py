"""GNN layers: gradients, shapes, structural behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gnn import (
    CompGCNLayer,
    GATLayer,
    GCNLayer,
    GeniePathEncoder,
    GeniePathLayer,
    GNNEncoder,
    GraphSAGELayer,
    gcn_norm_coefficients,
)
from repro.tensor import Tensor

from helpers import numeric_gradient


@pytest.fixture()
def tiny_graph():
    # 0-1, 1-2, 2-3, plus isolated node 4.
    src = np.array([0, 1, 1, 2, 2, 3])
    dst = np.array([1, 0, 2, 1, 3, 2])
    return src, dst, 5


def layer_gradcheck(layer_fn, x0, tol=1e-5):
    """Finite-difference check of d(sum(layer(x)^2))/dx."""
    def fn(t):
        return (layer_fn(t) ** 2).sum()

    x = Tensor(x0.copy(), requires_grad=True)
    fn(x).backward()
    numeric = numeric_gradient(fn, x0)
    assert np.abs(numeric - x.grad).max() < tol


class TestGCN:
    def test_shape(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        layer = GCNLayer(4, 6, rng=0)
        out = layer(Tensor(rng.normal(size=(n, 4))), src, dst, n)
        assert out.shape == (n, 6)

    def test_gradcheck(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        layer = GCNLayer(3, 2, rng=0)
        layer_gradcheck(lambda t: layer(t, src, dst, n), rng.normal(size=(n, 3)))

    def test_isolated_node_keeps_self_signal(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        layer = GCNLayer(3, 3, rng=0)
        x = rng.normal(size=(n, 3))
        out = layer(Tensor(x), src, dst, n).data
        assert np.abs(out[4]).sum() > 0  # self-loop term

    def test_norm_coefficients(self):
        src = np.array([0, 1])
        dst = np.array([1, 0])
        coef = gcn_norm_coefficients(src, dst, 3)
        np.testing.assert_allclose(coef, [0.5, 0.5])  # deg+1 = 2 each


class TestSAGE:
    def test_gradcheck(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        layer = GraphSAGELayer(3, 2, rng=0)
        layer_gradcheck(lambda t: layer(t, src, dst, n), rng.normal(size=(n, 3)))

    def test_neighbor_mean_semantics(self, rng):
        layer = GraphSAGELayer(2, 2, rng=0)
        x = rng.normal(size=(3, 2))
        src = np.array([1, 2])
        dst = np.array([0, 0])
        out = layer(Tensor(x), src, dst, 3).data
        expected = x[0] @ layer.self_linear.weight.data + layer.self_linear.bias.data
        expected = expected + x[1:3].mean(axis=0) @ layer.neighbor_linear.weight.data
        np.testing.assert_allclose(out[0], expected)


class TestGAT:
    def test_head_divisibility(self):
        with pytest.raises(ConfigError):
            GATLayer(4, 6, num_heads=4)

    def test_shape_and_gradcheck(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        layer = GATLayer(3, 4, num_heads=2, rng=0)
        out = layer(Tensor(rng.normal(size=(n, 3))), src, dst, n)
        assert out.shape == (n, 4)
        layer_gradcheck(lambda t: layer(t, src, dst, n), rng.normal(size=(n, 3)), tol=1e-4)

    def test_isolated_node_attends_to_self(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        layer = GATLayer(3, 4, num_heads=1, rng=0)
        x = rng.normal(size=(n, 3))
        out = layer(Tensor(x), src, dst, n).data
        expected = x[4] @ layer.linear.weight.data  # softmax over single self-loop = 1
        np.testing.assert_allclose(out[4], expected, atol=1e-10)


class TestCompGCN:
    def test_relations_change_output(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        layer = CompGCNLayer(3, 4, num_relations=2, rng=0)
        x = Tensor(rng.normal(size=(n, 3)))
        rel_a = np.zeros(len(src), dtype=np.int64)
        rel_b = np.ones(len(src), dtype=np.int64)
        out_a = layer(x, src, dst, n, relation=rel_a).data
        out_b = layer(x, src, dst, n, relation=rel_b).data
        assert np.abs(out_a - out_b).max() > 1e-6

    def test_gradcheck(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        layer = CompGCNLayer(3, 2, rng=0)
        rel = rng.integers(0, 2, size=len(src))
        layer_gradcheck(lambda t: layer(t, src, dst, n, relation=rel), rng.normal(size=(n, 3)))

    def test_default_relation_zero(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        layer = CompGCNLayer(3, 2, rng=0)
        x = Tensor(rng.normal(size=(n, 3)))
        np.testing.assert_allclose(
            layer(x, src, dst, n).data,
            layer(x, src, dst, n, relation=np.zeros(len(src), dtype=np.int64)).data,
        )


class TestGeniePath:
    def test_layer_returns_state_pair(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        layer = GeniePathLayer(4, rng=0)
        h = Tensor(rng.normal(size=(n, 4)))
        new_h, new_c = layer(h, h, src, dst, n)
        assert new_h.shape == (n, 4)
        assert new_c.shape == (n, 4)

    def test_encoder_shape_and_grads(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        encoder = GeniePathEncoder(3, 8, num_layers=2, rng=0)
        out = encoder(Tensor(rng.normal(size=(n, 3))), src, dst, n)
        assert out.shape == (n, 8)
        (out * out).sum().backward()
        assert all(p.grad is not None for p in encoder.parameters())

    def test_encoder_gradcheck(self, tiny_graph, rng):
        src, dst, n = tiny_graph
        encoder = GeniePathEncoder(2, 4, num_layers=1, rng=0)
        layer_gradcheck(lambda t: encoder(t, src, dst, n), rng.normal(size=(n, 2)), tol=1e-4)


class TestGNNEncoder:
    def test_unknown_type(self):
        with pytest.raises(ConfigError):
            GNNEncoder("transformer", 3, 4)
        with pytest.raises(ConfigError):
            GNNEncoder("gcn", 3, 4, num_layers=0)

    @pytest.mark.parametrize("layer_type", ["gcn", "sage", "gat", "compgcn"])
    def test_stacks_forward(self, layer_type, tiny_graph, rng):
        src, dst, n = tiny_graph
        encoder = GNNEncoder(layer_type, 3, 4, num_layers=2, rng=0)
        rel = np.zeros(len(src), dtype=np.int64)
        out = encoder(Tensor(rng.normal(size=(n, 3))), src, dst, n, relation=rel)
        assert out.shape == (n, 4)
