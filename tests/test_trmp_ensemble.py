"""TRMP Stage III: the snapshot ensemble."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotFittedError
from repro.eval import roc_auc
from repro.tensor import Tensor
from repro.trmp import EnsembleConfig, EnsembleLinkPredictor, EnsembleModel


class TestModel:
    def test_forward_shape(self, rng):
        model = EnsembleModel(snapshot_dim=8, config=EnsembleConfig(model_dim=16))
        tokens = Tensor(rng.normal(size=(5, 6, 8)))  # batch 5, 2*3 snapshots
        out = model(tokens)
        assert out.shape == (5,)


class TestPredictor:
    def test_needs_snapshots(self, split):
        with pytest.raises(ConfigError):
            EnsembleLinkPredictor().fit([], split)

    def test_not_fitted_guards(self):
        model = EnsembleLinkPredictor()
        with pytest.raises(NotFittedError):
            model.predict_pairs(np.array([[0, 1]]))
        with pytest.raises(NotFittedError):
            model.entity_embeddings()

    def test_fit_and_predict(self, split, trained_alpc):
        z = trained_alpc.node_embeddings
        rng = np.random.default_rng(0)
        snapshots = [z, z + rng.normal(0, 0.05, size=z.shape)]
        model = EnsembleLinkPredictor(EnsembleConfig(epochs=25, seed=0))
        model.fit(snapshots, split)
        pairs, labels = split.test_pairs_and_labels()
        scores = model.predict_pairs(pairs)
        assert (scores >= 0).all() and (scores <= 1).all()
        assert roc_auc(labels, scores) > 0.7

    def test_entity_embeddings_concatenate_in_order(self, split, trained_alpc):
        z = trained_alpc.node_embeddings
        snapshots = [z, 2 * z, 3 * z]
        model = EnsembleLinkPredictor(EnsembleConfig(epochs=1, seed=0))
        model.fit(snapshots, split)
        h = model.entity_embeddings()
        n, d = z.shape
        assert h.shape == (n, 3 * d)
        np.testing.assert_allclose(h[:, :d], z)
        np.testing.assert_allclose(h[:, d : 2 * d], 2 * z)
        np.testing.assert_allclose(h[:, 2 * d :], 3 * z)

    def test_pair_tokens_layout(self, split, trained_alpc):
        z = trained_alpc.node_embeddings
        model = EnsembleLinkPredictor(EnsembleConfig(epochs=1, seed=0))
        model.fit([z, z + 1.0], split)
        pairs = np.array([[3, 7]])
        tokens = model._pair_tokens(pairs)
        assert tokens.shape == (1, 4, z.shape[1])
        np.testing.assert_allclose(tokens[0, 0], z[3])
        np.testing.assert_allclose(tokens[0, 1], z[3] + 1.0)
        np.testing.assert_allclose(tokens[0, 2], z[7])
