"""Drift-aware stable training."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.trmp import DriftAwareReweighter, DriftReweighterConfig


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DriftReweighterConfig(min_weight=0.0).validate()
        with pytest.raises(ConfigError):
            DriftReweighterConfig(min_weight=2.0, max_weight=3.0).validate()
        with pytest.raises(ConfigError):
            DriftReweighterConfig(smoothing=0.0).validate()


class TestReference:
    def test_requires_reference(self):
        reweighter = DriftAwareReweighter()
        with pytest.raises(ConfigError):
            reweighter.entity_propensity(np.ones(4))
        assert not reweighter.has_reference

    def test_running_mean_reference(self):
        reweighter = DriftAwareReweighter()
        reweighter.update_reference(np.array([2.0, 0.0]))
        reweighter.update_reference(np.array([0.0, 2.0]))
        np.testing.assert_allclose(reweighter._reference, [1.0, 1.0])

    def test_shape_change_rejected(self):
        reweighter = DriftAwareReweighter()
        reweighter.update_reference(np.ones(4))
        with pytest.raises(ConfigError):
            reweighter.update_reference(np.ones(5))


class TestWeights:
    def test_stationary_counts_give_uniform_weights(self):
        reweighter = DriftAwareReweighter()
        counts = np.array([10.0, 20.0, 30.0])
        reweighter.update_reference(counts)
        pairs = np.array([[0, 1], [1, 2]])
        weights = reweighter.pair_weights(pairs, counts)
        np.testing.assert_allclose(weights, [1.0, 1.0])

    def test_overexposed_entities_downweighted(self):
        reweighter = DriftAwareReweighter()
        reweighter.update_reference(np.array([10.0, 10.0, 10.0]))
        # Entity 0 is suddenly three times as exposed.
        drifted = np.array([30.0, 10.0, 10.0])
        pairs = np.array([[0, 0], [1, 2]])
        weights = reweighter.pair_weights(pairs, drifted)
        assert weights[0] < weights[1]

    def test_weights_clamped_and_mean_one(self):
        config = DriftReweighterConfig(min_weight=0.5, max_weight=2.0)
        reweighter = DriftAwareReweighter(config)
        reweighter.update_reference(np.array([1.0, 1.0, 1.0, 1.0]))
        drifted = np.array([1000.0, 1.0, 1.0, 0.001])
        pairs = np.array([[0, 0], [1, 2], [3, 3]])
        weights = reweighter.pair_weights(pairs, drifted)
        ratio = weights.max() / weights.min()
        assert ratio <= (config.max_weight / config.min_weight) + 1e-9
        assert weights.mean() == pytest.approx(1.0)


class TestIntegration:
    def test_alpc_accepts_pair_weights(self, split, candidate, e_semantic):
        from repro.trmp import ALPCConfig, ALPCLinkPredictor

        pairs, _ = split.train_pairs_and_labels()
        rng = np.random.default_rng(0)
        weights = rng.uniform(0.5, 1.5, size=len(pairs))
        model = ALPCLinkPredictor(ALPCConfig(epochs=3, seed=0))
        model.fit(split, candidate.node_features, e_semantic, pair_weights=weights)
        assert np.isfinite(model.predict_pairs(split.test_pos[:5])).all()

    def test_alpc_rejects_misaligned_weights(self, split, candidate, e_semantic):
        from repro.trmp import ALPCConfig, ALPCLinkPredictor

        model = ALPCLinkPredictor(ALPCConfig(epochs=1, seed=0))
        with pytest.raises(ConfigError):
            model.fit(split, candidate.node_features, e_semantic, pair_weights=np.ones(3))

    def test_pipeline_stable_mode_runs(self, world):
        from repro.datasets import BehaviorConfig, BehaviorLogGenerator
        from repro.embeddings import SkipGramConfig
        from repro.embeddings.mlm import MLMConfig
        from repro.embeddings.semantic import SemanticEncoderConfig
        from repro.trmp import ALPCConfig, TRMPConfig, TRMPipeline

        config = TRMPConfig(
            skipgram=SkipGramConfig(epochs=5, seed=2),
            semantic=SemanticEncoderConfig(mlm=MLMConfig(epochs=3, seed=3)),
            alpc=ALPCConfig(epochs=6, seed=1),
            stable_reweighting=True,
        )
        pipeline = TRMPipeline(world, config)
        generator = BehaviorLogGenerator(world, BehaviorConfig(seed=9, drift_scale=0.8))
        run = pipeline.run_week(generator.generate_week(0))
        assert pipeline.reweighter is not None
        assert pipeline.reweighter.has_reference
        assert run.ranked_graph.num_edges > 0
