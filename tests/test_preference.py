"""User entity preference: embeddings and the serving store."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotFittedError
from repro.preference import (
    PreferenceStore,
    preference_scores,
    user_embedding,
    user_embedding_matrix,
)
from repro.text.sequence_extractor import UserEntitySequence


@pytest.fixture()
def embeddings(rng):
    vectors = rng.normal(size=(10, 4))
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


@pytest.fixture()
def sequences():
    return {
        0: UserEntitySequence(0, [1, 2, 1]),
        1: UserEntitySequence(1, [5]),
        3: UserEntitySequence(3, []),
    }


class TestUserEmbedding:
    def test_mean_of_sequence(self, embeddings):
        emb = user_embedding(embeddings, [1, 2, 1])
        np.testing.assert_allclose(emb, embeddings[[1, 2, 1]].mean(axis=0))

    def test_accepts_sequence_object(self, embeddings):
        seq = UserEntitySequence(9, [3, 4])
        np.testing.assert_allclose(
            user_embedding(embeddings, seq), embeddings[[3, 4]].mean(axis=0)
        )

    def test_empty_sequence_raises(self, embeddings):
        with pytest.raises(ConfigError):
            user_embedding(embeddings, [])

    def test_matrix_covers_only_active_users(self, embeddings, sequences):
        matrix, covered = user_embedding_matrix(embeddings, sequences, num_users=5)
        assert covered.tolist() == [True, True, False, False, False]
        np.testing.assert_allclose(matrix[2], 0.0)
        np.testing.assert_allclose(matrix[1], embeddings[5])

    def test_preference_scores_shape(self, embeddings, sequences):
        matrix, _ = user_embedding_matrix(embeddings, sequences, num_users=5)
        scores = preference_scores(matrix, embeddings, np.array([0, 5, 9]))
        assert scores.shape == (5, 3)


class TestPreferenceStore:
    def test_validation(self, embeddings):
        with pytest.raises(ConfigError):
            PreferenceStore(embeddings, head_size=0)
        with pytest.raises(ConfigError):
            PreferenceStore(embeddings, direct_weight=-1)

    def test_requires_build(self, embeddings):
        store = PreferenceStore(embeddings)
        with pytest.raises(NotFittedError):
            store.score_entity(0)
        with pytest.raises(NotFittedError):
            store.top_users_for_entities([0], 2)

    def test_uncovered_users_never_returned(self, embeddings, sequences):
        store = PreferenceStore(embeddings).build(sequences, num_users=5)
        users = store.top_users_for_entities([1, 2], k=5)
        assert {u.user_id for u in users} <= {0, 1}

    def test_top_users_sorted(self, embeddings, sequences):
        store = PreferenceStore(embeddings).build(sequences, num_users=5)
        users = store.top_users_for_entities([1], k=2)
        assert users[0].score >= users[-1].score

    def test_direct_interaction_boosts_interactors(self, embeddings):
        sequences = {
            0: UserEntitySequence(0, [7, 7, 7]),  # heavy interactor with 7
            1: UserEntitySequence(1, [7]),
        }
        store = PreferenceStore(embeddings, direct_weight=100.0).build(sequences, 2)
        users = store.top_users_for_entity(7, k=2)
        assert users[0].user_id == 0

    def test_zero_direct_weight_is_pure_dot(self, embeddings, sequences):
        store = PreferenceStore(embeddings, direct_weight=0.0, normalize=False).build(
            sequences, num_users=5
        )
        scores = store.score_entity(1)
        expected = store.user_matrix[0] @ embeddings[1]
        assert scores[0] == pytest.approx(expected)

    def test_top_users_matches_bruteforce(self, embeddings, sequences):
        store = PreferenceStore(embeddings).build(sequences, num_users=5)
        ids = [1, 5]
        per = store.user_matrix @ store.entity_embeddings[np.array(ids)].T
        per = per + store.direct_weight * store._interaction[:, np.array(ids)]
        brute = per.mean(axis=1)
        brute[~store.covered_users] = -np.inf
        expected_top = int(np.argmax(brute))
        assert store.top_users_for_entities(ids, k=1)[0].user_id == expected_top

    def test_weighted_average(self, embeddings, sequences):
        store = PreferenceStore(embeddings).build(sequences, num_users=5)
        heavy_on_first = store.top_users_for_entities([1, 5], k=2, weights=[100.0, 0.001])
        only_first = store.top_users_for_entities([1], k=2)
        assert [u.user_id for u in heavy_on_first] == [u.user_id for u in only_first]

    def test_weight_shape_validation(self, embeddings, sequences):
        store = PreferenceStore(embeddings).build(sequences, num_users=5)
        with pytest.raises(ConfigError):
            store.top_users_for_entities([1, 5], k=1, weights=[1.0])

    def test_empty_entities_raise(self, embeddings, sequences):
        store = PreferenceStore(embeddings).build(sequences, num_users=5)
        with pytest.raises(ConfigError):
            store.top_users_for_entities([], k=1)

    def test_head_caching_consistent(self, embeddings, sequences):
        store = PreferenceStore(embeddings, head_size=2).build(sequences, num_users=5)
        first = store.top_users_for_entity(1, k=2)
        second = store.top_users_for_entity(1, k=2)
        assert [u.user_id for u in first] == [u.user_id for u in second]

    def test_normalization_unit_rows(self, rng):
        raw = rng.normal(size=(6, 3)) * 10
        store = PreferenceStore(raw, normalize=True)
        norms = np.linalg.norm(store.entity_embeddings, axis=1)
        np.testing.assert_allclose(norms, np.ones(6))
