"""Sharded serving stack: registry atomicity, runtime identity, chaos resume.

Covers the layers above the substrate: a generation with a corrupt or
missing shard must never become servable (publish rolls back atomically and
serving stays on the previous generation), the runtime's cache keys carry
shard-generation identity, the resource accountant counts per-generation
artifact bytes accurately, and a refresh killed between per-shard freeze
checkpoints resumes to a single published generation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import BehaviorConfig, BehaviorLogGenerator, World, WorldConfig
from repro.embeddings import SkipGramConfig
from repro.embeddings.mlm import MLMConfig
from repro.embeddings.semantic import SemanticEncoderConfig
from repro.errors import CorruptArtifactError, NotFittedError, StorageError
from repro.graph import ShardedGraphStore, k_hop_expansion
from repro.obs import ManualClock, Observability
from repro.online import EGLSystem
from repro.preference import PreferenceStore, ShardedPreferenceIndex
from repro.resilience import FaultInjector, InjectedCrash, RetryPolicy
from repro.serving import ArtifactRegistry, ServingRuntime
from repro.text.sequence_extractor import UserEntitySequence
from repro.trmp import ALPCConfig, EnsembleConfig, TRMPConfig

NUM_NODES = 90


def seeded_edges(seed, num_edges=300):
    rng = np.random.default_rng(seed)
    seen, pairs = set(), []
    while len(pairs) < num_edges:
        u, v = rng.integers(0, NUM_NODES, 2)
        key = (min(int(u), int(v)), max(int(u), int(v)))
        if u == v or key in seen:
            continue
        seen.add(key)
        pairs.append(key)
    return np.asarray(pairs, dtype=np.int64), rng.random(num_edges) * 0.9 + 0.1


def committed_store(path, seed=0, n_shards=4):
    store = ShardedGraphStore(path, num_nodes=NUM_NODES, n_shards=n_shards)
    pairs, weights = seeded_edges(seed)
    store.put_edges(pairs, weights)
    gen = store.commit_version(tag=f"gen-{seed}")
    return store, gen


def built_preferences(seed=0, num_users=60, d=12):
    rng = np.random.default_rng(seed)
    embeddings = rng.standard_normal((NUM_NODES, d))
    sequences = {
        u: UserEntitySequence(u, [int(x) for x in rng.integers(0, NUM_NODES, 5)])
        for u in range(num_users)
    }
    store = PreferenceStore(embeddings, head_size=16, version_tag=f"daily-{seed}")
    store.build(sequences, num_users)
    return store


class TestRegistryShardedGraph:
    def test_publish_and_open_roundtrip(self, tmp_path):
        store, gen = committed_store(tmp_path / "store")
        registry = ArtifactRegistry(tmp_path / "registry")
        record = registry.publish_graph(store, version=gen, tag="week-0")
        assert record.source == "sharded_store"
        assert record.format == "csr-sharded"
        assert record.shards == 4
        reader = registry.open_graph(record.version)
        want = k_hop_expansion(store.snapshot_reader(gen), [0, 7], 2)
        got = k_hop_expansion(reader, [0, 7], 2)
        assert want.scores == got.scores

    def test_corrupt_shard_rejected_atomically(self, tmp_path):
        store, gen1 = committed_store(tmp_path / "store", seed=0)
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.publish_graph(store, version=gen1, tag="week-0")

        pairs, weights = seeded_edges(1)
        store.put_edges(pairs, weights)
        gen2 = store.commit_version(tag="week-1")
        spec = store._generation_entry(gen2)["shards"][2]
        meta = store.shard_store(2).csr_path(spec["version"]) / "meta.json"
        meta.write_text(meta.read_text() + " ")  # bit rot on one shard

        with pytest.raises(StorageError, match="shard 2"):
            registry.publish_graph(store, version=gen2, tag="week-1")
        # no record appended: the corrupt generation is not servable
        assert registry.latest("graph").version == gen1
        assert any("shard 2" in q["reason"] for q in registry.quarantined)
        # the surviving generation still opens
        reader = registry.open_graph(gen1)
        assert reader.generation == gen1

    def test_missing_shard_artifact_rejected(self, tmp_path):
        import shutil

        store, gen = committed_store(tmp_path / "store", seed=3)
        registry = ArtifactRegistry(tmp_path / "registry")
        spec = store._generation_entry(gen)["shards"][1]
        shutil.rmtree(store.shard_store(1).csr_path(spec["version"]))
        with pytest.raises(StorageError):
            registry.publish_graph(store, version=gen)
        assert registry.latest("graph") is None


class TestRegistryShardedPreferences:
    def test_sharded_sidecar_roundtrip(self, tmp_path):
        registry = ArtifactRegistry(tmp_path / "registry")
        store = built_preferences()
        record = registry.publish_preferences(store, shards=4)
        assert record.shards == 4
        index = registry.open_preferences(record.version)
        assert isinstance(index, ShardedPreferenceIndex)
        assert index.storage == "memmap-sharded"
        want = store.top_users_for_entity_sets([[1, 2, 5], [9, 40]], 10)
        got = index.top_users_for_entity_sets([[1, 2, 5], [9, 40]], 10)
        for w, g in zip(want, got):
            assert [u.user_id for u in w] == [u.user_id for u in g]
            assert np.allclose([u.score for u in w], [u.score for u in g])

    def test_corrupt_sidecar_demotes_to_npz(self, tmp_path):
        registry = ArtifactRegistry(tmp_path / "registry")
        store = built_preferences(seed=2)
        record = registry.publish_preferences(store, shards=2)
        from pathlib import Path

        sidecar = Path(record.aux_path)
        array = sidecar / "shard-01" / "user_matrix.npy"
        array.write_bytes(array.read_bytes()[:-7])  # truncate one shard array
        with pytest.raises(CorruptArtifactError):
            ShardedPreferenceIndex.load_memmap(sidecar, verify=True)
        # open falls back to the dense .npz artifact instead of serving it
        opened = registry.open_preferences(record.version)
        assert isinstance(opened, PreferenceStore)
        want = store.top_users_for_entity(3, 10)
        got = opened.top_users_for_entity(3, 10)
        assert [u.user_id for u in want] == [u.user_id for u in got]


class TestRuntimeShardIdentity:
    def _activate(self, runtime, reader, version):
        import types

        runtime.activate_graph(types.SimpleNamespace(graph=reader), version)

    def test_cache_token_carries_shard_count(self, tmp_path):
        store, gen = committed_store(tmp_path / "store")
        runtime = ServingRuntime()
        self._activate(runtime, store.snapshot_reader(gen), gen)
        active = runtime.acquire()
        assert active.graph_shards == 4
        assert active.graph_cache_version() == (gen, 4)
        runtime.cache.put(active.graph_cache_version(), ("k",), "value")
        assert runtime.cache.get((gen, 4), ("k",)) == "value"
        # an unsharded activation of the same numeric version cannot collide
        assert runtime.cache.get(gen, ("k",)) is None

    def test_swap_purges_previous_shard_generation(self, tmp_path):
        store, gen1 = committed_store(tmp_path / "store")
        pairs, weights = seeded_edges(9)
        store.put_edges(pairs, weights)
        gen2 = store.commit_version(tag="g2")
        runtime = ServingRuntime()
        self._activate(runtime, store.snapshot_reader(gen1), gen1)
        token1 = runtime.acquire().graph_cache_version()
        runtime.cache.put(token1, ("k",), "old")
        self._activate(runtime, store.snapshot_reader(gen2), gen2)
        assert runtime.cache.get(token1, ("k",)) is None
        assert runtime.acquire().graph_cache_version() == (gen2, 4)
        # rollback restores the previous generation's shard identity
        runtime.rollback("graph")
        assert runtime.acquire().graph_cache_version() == (gen1, 4)

    def test_health_reports_per_shard_rows(self, tmp_path):
        store, gen = committed_store(tmp_path / "store")
        runtime = ServingRuntime()
        self._activate(runtime, store.snapshot_reader(gen), gen)
        shards = runtime.health()["shards"]
        assert shards["sharded"] and shards["graph_shards"] == 4
        rows = shards["graph"]
        assert [row["shard"] for row in rows] == [0, 1, 2, 3]
        assert sum(row["edges_owned"] for row in rows) == 300


class TestResourceAccounting:
    def test_per_generation_bytes_grow_with_commits(self, tmp_path):
        store, gen1 = committed_store(tmp_path / "store")
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.publish_graph(store, version=gen1)
        obs = Observability()
        from repro.obs import ResourceAccountant

        accountant = ResourceAccountant(metrics=obs.metrics, registry=registry)
        first = accountant.usage()["artifacts"]["graph"]
        assert first["generations"] == 1 and first["disk_bytes"] > 0
        assert first["shards"] == 4

        pairs, weights = seeded_edges(11)
        store.put_edges(pairs, weights)
        gen2 = store.commit_version(tag="g2")
        registry.publish_graph(store, version=gen2)
        second = accountant.usage()["artifacts"]["graph"]
        assert second["generations"] == 2
        # the fix under test: the second generation's bytes are counted even
        # though the first walk already cached the store's paths
        assert second["disk_bytes"] > first["disk_bytes"]
        want = sum(
            sum(p.stat().st_size for p in store.artifact_paths(g)[0].parent.glob("**/*") if p.is_file())
            for g in ()
        ) or second["disk_bytes"]
        assert second["disk_bytes"] == want


def fast_config() -> TRMPConfig:
    return TRMPConfig(
        skipgram=SkipGramConfig(epochs=6, seed=2),
        semantic=SemanticEncoderConfig(mlm=MLMConfig(epochs=3, seed=3)),
        alpc=ALPCConfig(epochs=12, seed=1),
        ensemble=EnsembleConfig(epochs=8, seed=0),
    )


@pytest.fixture(scope="module")
def shard_world():
    return World(WorldConfig(num_entities=50, num_users=40, seed=11))


@pytest.fixture(scope="module")
def shard_events(shard_world):
    return BehaviorLogGenerator(
        shard_world, BehaviorConfig(num_days=8, seed=6)
    ).generate()


def make_system(world, root, n_shards=4, faults=None) -> EGLSystem:
    obs = Observability(clock=ManualClock())
    return EGLSystem(
        world,
        fast_config(),
        store_path=root / "store",
        artifact_root=root / "registry",
        obs=obs,
        retry_policy=RetryPolicy(clock=obs.clock, seed=1),
        faults=faults,
        n_shards=n_shards,
    )


class TestShardedRefreshChaos:
    def test_requires_store_path(self, shard_world):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            EGLSystem(shard_world, fast_config(), n_shards=4)

    def test_kill_between_shard_freezes_then_resume(
        self, shard_world, shard_events, tmp_path
    ):
        faults = FaultInjector(seed=0)
        # crash right after shard 01's freeze stage checkpoints
        faults.fail_at("pipeline.artifact_freeze.shard01", 1, exception=InjectedCrash)
        system = make_system(shard_world, tmp_path, faults=faults)
        with pytest.raises(InjectedCrash):
            system.weekly_refresh(shard_events)
        # the partial generation is invisible everywhere
        assert system.store.latest_generation() is None
        assert system.registry.latest("graph") is None
        with pytest.raises(NotFittedError):
            system.expand(["anything"])

        faults.clear("pipeline.artifact_freeze.shard01")
        resumed = make_system(shard_world, tmp_path, faults=None)
        report = resumed.weekly_refresh(shard_events, resume=True)
        # every pre-crash stage (incl. the completed shard freezes) resumed
        assert "cooccurrence" in report.resumed_stages
        assert report.graph_format == "csr-sharded"
        assert report.graph_shards == 4
        # exactly one generation was published, and it serves
        assert len(resumed.store.generations()) == 1
        assert resumed.registry.latest("graph").version == report.graph_version
        resumed.daily_preference_refresh(shard_events)
        phrase = max(shard_world.entities, key=lambda e: e.popularity).name
        view, result = resumed.target_users_for_phrases([phrase], depth=2, k=10)
        assert view.entities and result.users
