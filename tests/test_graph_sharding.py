"""Sharded graph substrate: partitioner, scatter-gather parity, atomic publish.

The acceptance bar for the sharded substrate is *pointwise identity*: for
any shard count, any seed set, and any expansion corner, the scatter-gather
read path must return byte-for-byte the same expansion as the single-shard
CSR kernel — sharding is a physical layout, never a semantic change. The
second bar is generation atomicity: a crash anywhere between shard commits
must leave the previous generation as the only visible one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StorageError
from repro.graph import (
    CSRGraph,
    GraphStore,
    ShardedGraphStore,
    ShardWorkerPool,
    k_hop_expansion,
    shard_of,
)
from repro.resilience import FaultInjector, InjectedCrash

SHARD_COUNTS = [1, 2, 4, 8]


def random_edges(num_nodes, num_edges, seed):
    rng = np.random.default_rng(seed)
    seen = set()
    pairs = []
    while len(pairs) < num_edges:
        u, v = rng.integers(0, num_nodes, 2)
        if u == v:
            continue
        key = (min(int(u), int(v)), max(int(u), int(v)))
        if key in seen:
            continue
        seen.add(key)
        pairs.append(key)
    weights = rng.random(num_edges) * 0.9 + 0.1
    return np.asarray(pairs, dtype=np.int64), weights


def make_sharded(tmp_path, pairs, weights, num_nodes, n_shards, name="s"):
    store = ShardedGraphStore(
        tmp_path / f"{name}{n_shards}", num_nodes=num_nodes, n_shards=n_shards
    )
    store.put_edges(pairs, weights)
    gen = store.commit_version(tag="g1")
    return store, gen


class TestPartitioner:
    def test_deterministic_and_in_range(self):
        ids = np.arange(10_000)
        for n in SHARD_COUNTS[1:]:
            owners = shard_of(ids, n)
            assert owners.min() >= 0 and owners.max() < n
            assert np.array_equal(owners, shard_of(ids, n))
            # splitmix64 spreads sequential ids close to evenly
            counts = np.bincount(owners, minlength=n)
            assert counts.min() > len(ids) / n * 0.8

    def test_scalar_matches_array(self):
        ids = np.arange(257)
        owners = shard_of(ids, 8)
        assert all(shard_of(int(i), 8) == owners[i] for i in ids)

    def test_single_shard_is_zero(self):
        assert np.array_equal(shard_of(np.arange(100), 1), np.zeros(100, dtype=np.int64))


class TestWorkerPool:
    def test_inline_and_threaded_agree(self):
        items = list(range(16))
        inline = ShardWorkerPool(1)
        threaded = ShardWorkerPool(4)
        try:
            fn = lambda x: x * x
            assert inline.map(fn, items) == threaded.map(fn, items)
        finally:
            inline.close()
            threaded.close()


class TestScatterGatherParity:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_expansion_pointwise_identical(self, tmp_path, n_shards, seed):
        num_nodes = 120
        pairs, weights = random_edges(num_nodes, 500, seed)
        reference = CSRGraph.from_edges(num_nodes, pairs, weights)
        store, gen = make_sharded(
            tmp_path, pairs, weights, num_nodes, n_shards, name=f"seed{seed}-"
        )
        reader = store.snapshot_reader(gen)
        seeds = [int(s) for s in np.random.default_rng(seed).integers(0, num_nodes, 3)]
        for corner in (
            {},
            {"min_edge_weight": 0.5},
            {"max_neighbors_per_node": 3},
            {"max_nodes": 12},
            {"min_edge_weight": 0.3, "max_neighbors_per_node": 5, "max_nodes": 20},
        ):
            want = k_hop_expansion(reference, seeds, 2, **corner)
            got = k_hop_expansion(reader, seeds, 2, **corner)
            assert want.scores == got.scores, corner
            assert want.hops == got.hops, corner
            assert want.parents == got.parents, corner

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_threaded_pool_identical_to_inline(self, tmp_path, n_shards):
        num_nodes = 100
        pairs, weights = random_edges(num_nodes, 400, 7)
        store, gen = make_sharded(tmp_path, pairs, weights, num_nodes, n_shards)
        pool = ShardWorkerPool(4)
        try:
            inline = store.snapshot_reader(gen)
            threaded = store.snapshot_reader(gen, pool=pool)
            want = k_hop_expansion(inline, [0, 5, 9], 2)
            got = k_hop_expansion(threaded, [0, 5, 9], 2)
            assert want.scores == got.scores
        finally:
            pool.close()

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_merged_graph_matches_unsharded_store(self, tmp_path, n_shards):
        num_nodes = 90
        pairs, weights = random_edges(num_nodes, 300, 3)
        flat = GraphStore(tmp_path / "flat", num_nodes=num_nodes)
        flat.put_edges(pairs, weights)
        flat_reader = flat.snapshot_reader(flat.commit_version())
        store, gen = make_sharded(tmp_path, pairs, weights, num_nodes, n_shards)
        reader = store.snapshot_reader(gen)
        want, got = flat_reader.graph(), reader.graph()
        assert np.array_equal(
            np.stack(want.canonical_pairs()), np.stack(got.canonical_pairs())
        )
        assert np.allclose(want.weight, got.weight)
        assert reader.num_edges == flat_reader.num_edges
        for node in (0, 13, 42):
            wn, ww = flat_reader.neighbors(node)
            gn, gw = reader.neighbors(node)
            assert np.array_equal(wn, gn) and np.allclose(ww, gw)


class TestGenerationAtomicity:
    def test_crash_between_shard_commits_hides_generation(self, tmp_path):
        num_nodes = 80
        pairs, weights = random_edges(num_nodes, 250, 5)
        faults = FaultInjector(seed=0)
        store = ShardedGraphStore(
            tmp_path / "atomic", num_nodes=num_nodes, n_shards=4, faults=faults
        )
        store.put_edges(pairs, weights)
        gen1 = store.commit_version(tag="g1")
        reader1 = store.snapshot_reader(gen1)
        baseline = k_hop_expansion(reader1, [0, 1], 2).scores

        pairs2, weights2 = random_edges(num_nodes, 250, 6)
        store.put_edges(pairs2, weights2)
        # seam call counters are global: gen1 already consumed 4 checks, so
        # the third shard of *this* commit is call #7
        faults.fail_at(
            "shard.commit", faults.calls("shard.commit") + 3, exception=InjectedCrash
        )
        with pytest.raises(InjectedCrash):
            store.commit_version(tag="g2")
        # the manifest never saw the partial generation
        assert store.latest_generation() == gen1
        assert k_hop_expansion(store.snapshot_reader(), [0, 1], 2).scores == baseline
        # the old reader keeps serving untouched
        assert k_hop_expansion(reader1, [0, 1], 2).scores == baseline

        faults.clear("shard.commit")
        gen2 = store.commit_version(tag="g2")
        assert gen2 == gen1 + 1
        assert store.latest_generation() == gen2
        # the retried generation serves the merged edge set
        reader2 = store.snapshot_reader(gen2)
        assert reader2.num_edges >= reader1.num_edges

    def test_commit_generation_requires_every_shard(self, tmp_path):
        pairs, weights = random_edges(60, 150, 1)
        store = ShardedGraphStore(tmp_path / "partial", num_nodes=60, n_shards=4)
        store.put_edges(pairs, weights)
        results = [store.commit_shard(s, tag="g1") for s in range(3)]
        with pytest.raises(StorageError):
            store.commit_generation(results, tag="g1")
        assert store.latest_generation() is None

    def test_commit_generation_idempotent(self, tmp_path):
        pairs, weights = random_edges(60, 150, 2)
        store = ShardedGraphStore(tmp_path / "idem", num_nodes=60, n_shards=2)
        store.put_edges(pairs, weights)
        results = [store.commit_shard(s, tag="g1") for s in range(2)]
        gen = store.commit_generation(results, tag="g1")
        assert store.commit_generation(results, tag="g1") == gen
        assert len(store.generations()) == 1

    def test_shard_count_fixed_per_store(self, tmp_path):
        ShardedGraphStore(tmp_path / "fixed", num_nodes=10, n_shards=4)
        with pytest.raises(StorageError):
            ShardedGraphStore(tmp_path / "fixed", num_nodes=10, n_shards=8)
        # reopening without declaring the count adopts the manifest's
        reopened = ShardedGraphStore(tmp_path / "fixed")
        assert reopened.n_shards == 4

    def test_missing_shard_artifact_refused_at_open(self, tmp_path):
        import shutil

        pairs, weights = random_edges(70, 200, 4)
        store, gen = make_sharded(tmp_path, pairs, weights, 70, 4, name="gone")
        entry = store._generation_entry(gen)
        spec = entry["shards"][2]
        shutil.rmtree(store.shard_store(2).csr_path(spec["version"]))
        with pytest.raises(StorageError):
            store.snapshot_reader(gen)

    def test_validate_generation_detects_corruption(self, tmp_path):
        pairs, weights = random_edges(70, 200, 8)
        store, gen = make_sharded(tmp_path, pairs, weights, 70, 4, name="rot")
        assert store.validate_generation(gen)
        spec = store._generation_entry(gen)["shards"][1]
        meta = store.shard_store(1).csr_path(spec["version"]) / "meta.json"
        meta.write_text(meta.read_text() + " ")  # any byte flip breaks the digest
        with pytest.raises(StorageError):
            store.validate_generation(gen)
