"""Structured logging: JSON records, level gating, family sinks, trace ids."""

import io
import json

import pytest

from repro.errors import ConfigError
from repro.obs import ManualClock, StructuredLogger, Tracer


@pytest.fixture()
def clock():
    return ManualClock(start=1_000.0)


class TestRecordShape:
    def test_record_fields_and_frozen_timestamp(self, clock):
        logger = StructuredLogger("serving", clock=clock)
        logger.info("hot_swap", kind="graph", version=2)
        (record,) = logger.records()
        assert record == {
            "ts": 1_000.0, "level": "info", "component": "serving",
            "event": "hot_swap", "kind": "graph", "version": 2,
        }

    def test_stream_emits_one_json_line_per_record(self, clock):
        stream = io.StringIO()
        logger = StructuredLogger("x", clock=clock, stream=stream)
        logger.info("a", n=1)
        logger.warning("b")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "a"
        assert json.loads(lines[1])["level"] == "warning"

    def test_no_stream_by_default_ring_only(self, clock):
        logger = StructuredLogger("x", clock=clock)
        logger.info("quiet")
        assert len(logger.records()) == 1  # nowhere to write, nothing raised


class TestLevelGating:
    def test_debug_suppressed_at_default_level(self, clock):
        logger = StructuredLogger("x", clock=clock)
        logger.debug("noise")
        logger.info("signal")
        assert [r["event"] for r in logger.records()] == ["signal"]

    def test_set_level_applies_family_wide(self, clock):
        root = StructuredLogger("root", clock=clock)
        child = root.child("child")
        root.set_level("error")
        child.warning("dropped")
        child.error("kept")
        assert [r["event"] for r in root.records()] == ["kept"]

    def test_unknown_level_rejected(self, clock):
        logger = StructuredLogger("x", clock=clock)
        with pytest.raises(ConfigError):
            logger.set_level("loud")
        with pytest.raises(ConfigError):
            StructuredLogger("x", clock=clock, min_level="loud")

    def test_disabled_logger_is_a_noop(self, clock):
        logger = StructuredLogger("x", clock=clock, enabled=False)
        logger.error("boom")
        assert logger.records() == []


class TestFamilySink:
    def test_children_share_one_ring(self, clock):
        root = StructuredLogger("system", clock=clock)
        drift = root.child("drift")
        alerts = root.child("alerts")
        drift.info("drift_report")
        alerts.warning("alert_firing")
        components = [r["component"] for r in root.records()]
        assert components == ["drift", "alerts"]

    def test_attach_stream_later_covers_whole_family(self, clock):
        root = StructuredLogger("system", clock=clock)
        child = root.child("serving")
        stream = io.StringIO()
        root.attach_stream(stream)
        child.info("after")
        assert json.loads(stream.getvalue())["component"] == "serving"

    def test_ring_capacity_evicts_oldest(self, clock):
        logger = StructuredLogger("x", clock=clock, capacity=3)
        for i in range(5):
            logger.info("e", i=i)
        assert [r["i"] for r in logger.records()] == [2, 3, 4]

    def test_records_filter_by_level_and_event(self, clock):
        logger = StructuredLogger("x", clock=clock)
        logger.info("a")
        logger.warning("a")
        logger.warning("b")
        assert len(logger.records(level="warning")) == 2
        assert len(logger.records(event="a")) == 2
        assert len(logger.records(level="warning", event="a")) == 1


class TestTraceCorrelation:
    def test_log_inside_span_carries_trace_ids(self, clock):
        tracer = Tracer(clock=clock)
        logger = StructuredLogger("x", clock=clock, tracer=tracer)
        with tracer.span("api.expand") as outer:
            logger.info("outer_event")
            with tracer.span("runtime.compute") as inner:
                logger.info("inner_event")
        outer_rec, inner_rec = logger.records()
        assert outer_rec["trace_id"] == outer.trace_id
        assert outer_rec["span_id"] == outer.span_id
        # The inner record is stamped with the *innermost* open span but
        # shares the outer record's trace.
        assert inner_rec["span_id"] == inner.span_id
        assert inner_rec["trace_id"] == outer_rec["trace_id"]

    def test_log_outside_any_span_has_no_ids(self, clock):
        tracer = Tracer(clock=clock)
        logger = StructuredLogger("x", clock=clock, tracer=tracer)
        logger.info("bare")
        (record,) = logger.records()
        assert "trace_id" not in record and "span_id" not in record
