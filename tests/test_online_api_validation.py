"""API edge validation and artifact-version echo in the response envelope."""

import json
import math

import numpy as np
import pytest

from repro.graph import EntityGraph
from repro.online import EGLSystem
from repro.online.api import EGLService, ExpandRequest, TargetRequest
from repro.online.reasoning import GraphReasoner
from repro.preference.store import PreferenceStore
from repro.text.sequence_extractor import UserEntitySequence


@pytest.fixture(scope="module")
def service(world):
    """An EGLService over hand-activated artifacts — no TRMP training."""
    system = EGLSystem(world)
    graph = EntityGraph.from_edge_list(
        world.num_entities, [(0, 1), (1, 2)], [0.9, 0.8], [0, 0]
    )
    reasoner = GraphReasoner(graph, system.pipeline.entity_dict)
    system.runtime.activate_graph(reasoner, version=3, tag="week-2")
    rng = np.random.default_rng(0)
    embeddings = rng.normal(size=(world.num_entities, 6))
    sequences = {
        u: UserEntitySequence(u, list(rng.integers(0, world.num_entities, size=6)))
        for u in range(30)
    }
    prefs = PreferenceStore(embeddings, head_size=16).build(sequences, world.num_users)
    system.runtime.activate_preferences(prefs, version=5, tag="daily-5")
    return EGLService(system)


class TestValidation:
    def test_non_positive_depth_rejected(self, service, world):
        for depth in (0, -1):
            response = service.expand(
                ExpandRequest(phrases=[world.entities[0].name], depth=depth)
            )
            assert not response.ok
            assert "depth" in response.error

    def test_non_positive_max_entities_rejected(self, service, world):
        response = service.expand(
            ExpandRequest(phrases=[world.entities[0].name], max_entities=0)
        )
        assert not response.ok
        assert "max_entities" in response.error

    def test_non_finite_min_score_rejected(self, service, world):
        for bad in (math.nan, math.inf, -math.inf):
            response = service.expand(
                ExpandRequest(phrases=[world.entities[0].name], min_score=bad)
            )
            assert not response.ok
            assert "min_score" in response.error

    def test_non_positive_k_rejected(self, service):
        response = service.target(TargetRequest(entity_ids=[0], k=0))
        assert not response.ok
        assert "k must be" in response.error

    def test_non_finite_weights_rejected(self, service):
        response = service.target(
            TargetRequest(entity_ids=[0, 1], k=5, weights=[0.5, math.nan])
        )
        assert not response.ok
        assert "finite" in response.error

    def test_misaligned_weights_rejected(self, service):
        response = service.target(
            TargetRequest(entity_ids=[0, 1], k=5, weights=[0.5])
        )
        assert not response.ok
        assert "align" in response.error

    def test_error_envelope_is_serialisable(self, service, world):
        response = service.expand(
            ExpandRequest(phrases=[world.entities[0].name], depth=-2)
        )
        payload = response.to_dict()
        json.dumps(payload)
        assert payload["ok"] is False and payload["payload"] == {}


class TestVersionEcho:
    def test_success_reports_active_versions(self, service, world):
        response = service.expand(ExpandRequest(phrases=[world.entities[0].name]))
        assert response.ok
        assert response.graph_version == 3
        assert response.preference_version == 5

    def test_error_envelope_also_reports_versions(self, service):
        response = service.target(TargetRequest(entity_ids=[0], k=-1))
        assert not response.ok
        assert response.graph_version == 3
        assert response.preference_version == 5

    def test_fresh_system_reports_none(self, world):
        fresh = EGLService(EGLSystem(world))
        response = fresh.target(TargetRequest(entity_ids=[0], k=5))
        assert not response.ok  # nothing activated yet
        assert response.graph_version is None
        assert response.preference_version is None

    def test_batch_endpoint(self, service):
        response = service.target_batch(
            [
                TargetRequest(entity_ids=[0, 1], k=4),
                TargetRequest(entity_ids=[2], k=4),
            ]
        )
        assert response.ok
        assert len(response.payload["results"]) == 2
        assert all(len(r["users"]) == 4 for r in response.payload["results"])
        assert response.graph_version == 3

    def test_batch_requires_shared_k(self, service):
        response = service.target_batch(
            [
                TargetRequest(entity_ids=[0], k=4),
                TargetRequest(entity_ids=[1], k=5),
            ]
        )
        assert not response.ok
        assert "one k" in response.error
