"""Satellite acceptance: one expand request, one correlation id, four surfaces.

A single cold ``expand`` under a frozen ManualClock must be joinable by
the same correlation id in (1) the structured log ring, (2) the trace
export, (3) the ``/journeys`` record, and (4) a latency-histogram
exemplar — the whole point of the request-journey refactor.
"""

import json

import numpy as np
import pytest

from repro.graph import EntityGraph
from repro.obs import ManualClock, Observability
from repro.online import EGLSystem
from repro.online.api import EGLService, ExpandRequest
from repro.online.reasoning import GraphReasoner
from repro.preference.store import PreferenceStore
from repro.text.sequence_extractor import UserEntitySequence


@pytest.fixture()
def frozen_service(world):
    obs = Observability(clock=ManualClock(start=9_000.0))
    system = EGLSystem(world, obs=obs)
    graph = EntityGraph.from_edge_list(
        world.num_entities, [(0, 1), (1, 2)], [0.9, 0.8], [0, 0]
    )
    reasoner = GraphReasoner(graph, system.pipeline.entity_dict)
    system.runtime.activate_graph(reasoner, version=1, tag="week-0")
    rng = np.random.default_rng(0)
    embeddings = rng.normal(size=(world.num_entities, 6))
    sequences = {
        u: UserEntitySequence(u, list(rng.integers(0, world.num_entities, size=6)))
        for u in range(30)
    }
    prefs = PreferenceStore(embeddings, head_size=16).build(sequences, world.num_users)
    system.runtime.activate_preferences(prefs, version=1, tag="daily-1")
    obs.tracer.clear()
    return EGLService(system)


class TestOneRequestFourSurfaces:
    def test_single_expand_joins_across_all_surfaces(self, frozen_service, world):
        service = frozen_service
        obs = service.obs
        response = service.expand(
            ExpandRequest(phrases=[world.entities[0].name], depth=2)
        )
        assert response.ok

        # One journey record — its correlation id anchors the join.
        (journey,) = obs.journeys.tail()
        correlation_id = journey["correlation_id"]
        assert correlation_id > 0
        assert journey["endpoint"] == "expand"
        assert journey["cache"] == "miss"  # cold request
        assert journey["hops"] is not None and journey["hops"][0] == 1
        assert journey["duration_ms"] == response.elapsed_ms
        assert journey["ts"] == 9_000.0  # frozen clock

        # Surface 1: the structured log ring — the cold-path expand_miss
        # record carries the same correlation id.
        (miss_record,) = obs.logger.records(event="expand_miss")
        assert miss_record["correlation_id"] == correlation_id

        # Surface 2: the trace export — the api.expand root span and its
        # runtime child both carry the id.
        spans = obs.tracer.to_dicts()
        api_spans = [s for s in spans if s["name"] == "api.expand"]
        assert len(api_spans) == 1
        assert api_spans[0]["correlation_id"] == correlation_id
        assert journey["trace_id"] == api_spans[0]["trace_id"]
        child = [s for s in spans if s["name"] == "runtime.expand_compute"]
        assert child and child[0]["correlation_id"] == correlation_id

        # Surface 3: /journeys NDJSON serves the same record.
        routes = service.telemetry_routes()
        _ctype, body = routes["/journeys"]()
        (line,) = body.splitlines()
        assert json.loads(line)["correlation_id"] == correlation_id

        # Surface 4: histogram exemplars — both the API latency histogram
        # and the runtime's expansion-miss histogram link a bucket back to
        # this request.
        api_hist = obs.metrics.histogram(
            "api_request_seconds", help="End-to-end API request latency",
            endpoint="expand",
        )
        [(_bound, (value, ex_correlation, ex_trace))] = api_hist.exemplars()
        assert ex_correlation == correlation_id
        assert ex_trace == journey["trace_id"]
        assert value == response.elapsed_ms / 1000.0

        miss_hist = obs.metrics.histogram(
            "serving_expand_seconds",
            help="k-hop expansion latency on the runtime read path "
                 "(computed expansions only; cache hits are obs-free)",
            outcome="computed",
        )
        exemplars = miss_hist.exemplars()
        assert exemplars and exemplars[0][1][1] == correlation_id

        # The exemplar also reaches the OpenMetrics exposition, served
        # over the /metrics-openmetrics telemetry route.
        ctype, exposition = routes["/metrics-openmetrics"]()
        assert ctype.startswith("application/openmetrics-text")
        assert f'correlation_id="{correlation_id}"' in exposition
        assert exposition.rstrip().endswith("# EOF")

    def test_two_requests_mint_distinct_ids(self, frozen_service, world):
        service = frozen_service
        service.expand(ExpandRequest(phrases=[world.entities[0].name], depth=2))
        service.expand(ExpandRequest(phrases=[world.entities[1].name], depth=2))
        ids = [j["correlation_id"] for j in service.obs.journeys.tail()]
        assert len(set(ids)) == 2
        assert ids[1] == ids[0] + 1

    def test_warm_hit_renders_as_cache_hit_without_new_log_noise(
        self, frozen_service, world
    ):
        service = frozen_service
        phrase = world.entities[0].name
        service.expand(ExpandRequest(phrases=[phrase], depth=2))
        service.expand(ExpandRequest(phrases=[phrase], depth=2))
        cold, warm = service.obs.journeys.tail()
        assert cold["cache"] == "miss"
        assert warm["cache"] == "hit"
        # Only the cold request logged an expand_miss.
        assert len(service.obs.logger.records(event="expand_miss")) == 1
