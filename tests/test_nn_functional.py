"""Loss functions."""

import numpy as np
import pytest
from scipy.special import log_softmax as scipy_log_softmax

from repro.nn.functional import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    hinge_margin_loss,
    mse_loss,
)
from repro.tensor import Tensor

from helpers import assert_gradcheck


class TestBCE:
    def test_matches_manual_formula(self, rng):
        z = rng.normal(size=(20,))
        y = (rng.random(20) < 0.5).astype(float)
        p = 1 / (1 + np.exp(-z))
        expected = -(y * np.log(p) + (1 - y) * np.log(1 - p)).mean()
        actual = float(binary_cross_entropy_with_logits(Tensor(z), y).data)
        assert abs(actual - expected) < 1e-10

    def test_stable_for_extreme_logits(self):
        z = Tensor(np.array([-500.0, 500.0]))
        y = np.array([0.0, 1.0])
        loss = binary_cross_entropy_with_logits(z, y)
        assert np.isfinite(float(loss.data))
        assert float(loss.data) < 1e-6

    def test_gradcheck(self, rng):
        z = rng.normal(size=(6,))
        y = (rng.random(6) < 0.5).astype(float)
        assert_gradcheck(lambda x: binary_cross_entropy_with_logits(x, y), z)

    def test_weighted(self, rng):
        z = rng.normal(size=(4,))
        y = np.array([1.0, 0.0, 1.0, 0.0])
        w = np.array([2.0, 0.0, 0.0, 0.0])
        weighted = float(binary_cross_entropy_with_logits(Tensor(z), y, weights=w).data)
        only_first = float(
            binary_cross_entropy_with_logits(Tensor(z[:1]), y[:1]).data
        )
        assert abs(weighted - only_first) < 1e-10

    def test_weighted_gradcheck(self, rng):
        z = rng.normal(size=(5,))
        y = (rng.random(5) < 0.5).astype(float)
        w = rng.random(5) + 0.1
        assert_gradcheck(lambda x: binary_cross_entropy_with_logits(x, y, weights=w), z)


class TestCrossEntropy:
    def test_matches_scipy(self, rng):
        logits = rng.normal(size=(5, 7))
        targets = rng.integers(0, 7, size=5)
        expected = -scipy_log_softmax(logits, axis=-1)[np.arange(5), targets].mean()
        actual = float(cross_entropy(Tensor(logits), targets).data)
        assert abs(actual - expected) < 1e-10

    def test_gradcheck(self, rng):
        logits = rng.normal(size=(4, 5))
        targets = rng.integers(0, 5, size=4)
        assert_gradcheck(lambda x: cross_entropy(x, targets), logits)

    def test_masked_positions_excluded(self, rng):
        logits = rng.normal(size=(2, 3, 4))
        targets = rng.integers(0, 4, size=(2, 3))
        mask = np.zeros((2, 3), bool)
        mask[0, 0] = True
        masked = float(cross_entropy(Tensor(logits), targets, mask=mask).data)
        single = float(cross_entropy(Tensor(logits[0:1, 0:1]), targets[0:1, 0:1]).data)
        assert abs(masked - single) < 1e-10

    def test_masked_gradcheck(self, rng):
        logits = rng.normal(size=(2, 3, 4))
        targets = rng.integers(0, 4, size=(2, 3))
        mask = rng.random((2, 3)) < 0.6
        mask[0, 0] = True
        assert_gradcheck(lambda x: cross_entropy(x, targets, mask=mask), logits)


class TestOtherLosses:
    def test_mse(self, rng):
        pred = rng.normal(size=(8,))
        target = rng.normal(size=(8,))
        expected = ((pred - target) ** 2).mean()
        assert abs(float(mse_loss(Tensor(pred), target).data) - expected) < 1e-12

    def test_hinge_zero_when_margin_met(self):
        pos = Tensor(np.array([5.0, 5.0]))
        neg = Tensor(np.array([1.0, 1.0]))
        assert float(hinge_margin_loss(pos, neg, margin=1.0).data) == 0.0

    def test_hinge_positive_when_violated(self):
        pos = Tensor(np.array([0.0]))
        neg = Tensor(np.array([0.0]))
        assert float(hinge_margin_loss(pos, neg, margin=1.0).data) == pytest.approx(1.0)
