"""CircuitBreaker: the closed → open → half-open → closed state machine."""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError, StorageError
from repro.obs import ManualClock
from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make_breaker(clock=None, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("recovery_timeout", 10.0)
    return CircuitBreaker("test", clock=clock or ManualClock(), **kwargs)


def test_starts_closed_and_allows():
    breaker = make_breaker()
    assert breaker.state == CLOSED
    assert breaker.allow_request()


def test_trips_after_consecutive_failures():
    breaker = make_breaker(failure_threshold=3)
    for _ in range(2):
        breaker.record_failure(StorageError("x"))
        assert breaker.state == CLOSED
    breaker.record_failure(StorageError("final straw"))
    assert breaker.state == OPEN
    assert not breaker.allow_request()
    with pytest.raises(CircuitOpenError) as excinfo:
        breaker.allow()
    assert "final straw" in str(excinfo.value)


def test_success_resets_the_failure_streak():
    breaker = make_breaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # streak broken
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED


def test_open_promotes_to_half_open_after_recovery_timeout():
    clock = ManualClock()
    breaker = make_breaker(clock=clock, failure_threshold=1, recovery_timeout=30.0)
    breaker.record_failure(StorageError("x"))
    assert breaker.state == OPEN
    clock.advance(29.0)
    assert breaker.state == OPEN
    clock.advance(1.0)
    assert breaker.state == HALF_OPEN


def test_half_open_limits_trial_calls():
    clock = ManualClock()
    breaker = make_breaker(
        clock=clock, failure_threshold=1, recovery_timeout=5.0, half_open_max_calls=1
    )
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow_request()  # the one trial slot
    assert not breaker.allow_request()  # second concurrent probe rejected


def test_half_open_success_closes():
    clock = ManualClock()
    breaker = make_breaker(clock=clock, failure_threshold=1, recovery_timeout=5.0)
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow_request()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.snapshot()["consecutive_failures"] == 0


def test_half_open_failure_reopens_and_restarts_timeout():
    clock = ManualClock()
    breaker = make_breaker(clock=clock, failure_threshold=1, recovery_timeout=5.0)
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow_request()
    breaker.record_failure(StorageError("still down"))
    assert breaker.state == OPEN
    clock.advance(4.0)
    assert breaker.state == OPEN  # fresh timeout from the re-open
    clock.advance(1.0)
    assert breaker.state == HALF_OPEN


def test_call_wrapper_records_outcomes():
    breaker = make_breaker(failure_threshold=2)
    assert breaker.call(lambda: "ok") == "ok"

    def boom():
        raise StorageError("x")

    for _ in range(2):
        with pytest.raises(StorageError):
            breaker.call(boom)
    assert breaker.state == OPEN
    with pytest.raises(CircuitOpenError):
        breaker.call(lambda: "never runs")


def test_transition_callback_sequence():
    clock = ManualClock()
    transitions = []
    breaker = CircuitBreaker(
        "cb", failure_threshold=1, recovery_timeout=5.0, clock=clock,
        on_transition=lambda name, old, new: transitions.append((name, old, new)),
    )
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow_request()
    breaker.record_success()
    assert transitions == [
        ("cb", CLOSED, OPEN),
        ("cb", OPEN, HALF_OPEN),
        ("cb", HALF_OPEN, CLOSED),
    ]


def test_snapshot_reports_durable_facts():
    clock = ManualClock()
    breaker = make_breaker(clock=clock, failure_threshold=1)
    breaker.record_failure(StorageError("why"))
    breaker.allow_request()  # rejected
    snap = breaker.snapshot()
    assert snap["state"] == OPEN
    assert snap["trip_count"] == 1
    assert snap["rejected_calls"] == 1
    assert snap["last_error"] == "why"
    assert snap["opened_at"] is not None


def test_reset_force_closes():
    breaker = make_breaker(failure_threshold=1)
    breaker.record_failure()
    assert breaker.state == OPEN
    breaker.reset()
    assert breaker.state == CLOSED
    assert breaker.allow_request()


def test_invalid_thresholds_rejected():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(half_open_max_calls=0)
