"""Entity Dict: lookup, longest-match scanning, weekly updates."""

import pytest

from repro.errors import VocabularyError
from repro.text import EntityDict, EntityEntry


@pytest.fixture()
def sample_dict():
    return EntityDict(
        [
            EntityEntry(0, "nba", 3, "sport_event"),
            EntityEntry(1, "la lakers", 2, "sport_team"),
            EntityEntry(2, "la", 10, "travel_place"),
            EntityEntry(3, "lakers", 2, "sport_team"),
        ]
    )


class TestLookup:
    def test_by_name_case_insensitive(self, sample_dict):
        assert sample_dict.by_name("NBA").entity_id == 0

    def test_contains(self, sample_dict):
        assert "nba" in sample_dict
        assert "cba" not in sample_dict

    def test_by_id_and_errors(self, sample_dict):
        assert sample_dict.by_id(1).name == "la lakers"
        with pytest.raises(VocabularyError):
            sample_dict.by_id(99)
        with pytest.raises(VocabularyError):
            sample_dict.by_name("ghost")

    def test_get_returns_none(self, sample_dict):
        assert sample_dict.get("ghost") is None

    def test_types_and_entities_of_type(self, sample_dict):
        assert sample_dict.types()[2] == "sport_team"
        teams = sample_dict.entities_of_type(2)
        assert {e.entity_id for e in teams} == {1, 3}


class TestScan:
    def test_single_token_match(self, sample_dict):
        spans = sample_dict.scan(["i", "watch", "nba"])
        assert [(s, e, entry.entity_id) for s, e, entry in spans] == [(2, 2, 0)]

    def test_longest_match_wins(self, sample_dict):
        spans = sample_dict.scan(["la", "lakers", "rock"])
        assert len(spans) == 1
        assert spans[0][2].entity_id == 1  # "la lakers", not "la" + "lakers"

    def test_non_overlapping_greedy(self, sample_dict):
        spans = sample_dict.scan(["la", "la", "lakers"])
        ids = [entry.entity_id for _, _, entry in spans]
        assert ids == [2, 1]  # "la" then "la lakers"

    def test_case_insensitive_scan(self, sample_dict):
        assert sample_dict.scan(["NBA"])[0][2].entity_id == 0

    def test_empty_tokens(self, sample_dict):
        assert sample_dict.scan([]) == []


class TestUpdates:
    def test_update_adds_and_overwrites(self, sample_dict):
        n = sample_dict.update([EntityEntry(4, "cba", 3, "sport_event")])
        assert n == 1
        assert sample_dict.by_name("cba").entity_id == 4

    def test_remove(self, sample_dict):
        sample_dict.remove(0)
        assert "nba" not in sample_dict
        assert sample_dict.scan(["nba"]) == []
        with pytest.raises(VocabularyError):
            sample_dict.remove(0)

    def test_len_and_iter(self, sample_dict):
        assert len(sample_dict) == 4
        assert {e.entity_id for e in sample_dict} == {0, 1, 2, 3}


class TestFromWorld:
    def test_covers_all_entities(self, world, entity_dict):
        assert len(entity_dict) == world.num_entities
        first = world.entities[0]
        entry = entity_dict.by_name(first.name)
        assert entry.entity_id == first.entity_id
        assert entry.type_id == first.type_id
