"""Core Tensor mechanics: arithmetic, broadcasting, graph traversal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.errors import GradientError
from repro.tensor import Tensor, as_tensor, is_grad_enabled, no_grad, unbroadcast

from helpers import assert_gradcheck


class TestConstruction:
    def test_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).data.sum() == 0
        assert Tensor.ones(2, 3).data.sum() == 6

    def test_from_numpy_shares_data(self):
        a = np.ones(3)
        t = Tensor.from_numpy(a)
        a[0] = 5.0
        assert t.data[0] == 5.0

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3).detach()
        z = (y * y).sum()
        z.backward()
        assert x.grad is None

    def test_item(self):
        assert Tensor([[3.5]]).item() == 3.5


class TestArithmetic:
    def test_add_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = Tensor([3.0, 4.0], requires_grad=True)
        (x + y).sum().backward()
        np.testing.assert_allclose(x.grad, [1, 1])
        np.testing.assert_allclose(y.grad, [1, 1])

    def test_mul_backward(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        y = Tensor([5.0, 7.0], requires_grad=True)
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, [5, 7])
        np.testing.assert_allclose(y.grad, [2, 3])

    def test_div_gradcheck(self, rng):
        a = rng.normal(size=(3, 4)) + 3.0
        assert_gradcheck(lambda x: (x / 2.5).sum() + (1.0 / x).sum(), a)

    def test_sub_and_neg(self):
        x = Tensor([4.0], requires_grad=True)
        ((-x) - x).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [-2.0])

    def test_rsub_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        y = 10.0 - x
        z = 10.0 / x
        np.testing.assert_allclose(y.data, [8.0])
        np.testing.assert_allclose(z.data, [5.0])

    def test_pow_gradcheck(self, rng):
        a = np.abs(rng.normal(size=(4,))) + 0.5
        assert_gradcheck(lambda x: (x**3).sum(), a)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_comparison_returns_bool_array(self):
        x = Tensor([1.0, 5.0])
        assert (x > 3).dtype == bool
        assert list(x > 3) == [False, True]
        assert list(x <= 1.0) == [True, False]


class TestBroadcasting:
    def test_broadcast_add_backward(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [3, 3, 3, 3])

    def test_broadcast_mul_keepdim_axis(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        s = Tensor(np.full((2, 1), 2.0), requires_grad=True)
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, [[3], [3]])

    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=3, max_side=4),
               elements=st.floats(-5, 5)),
    )
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, a):
        target_shape = a.shape
        expanded = np.broadcast_to(a, (2,) + target_shape)
        reduced = unbroadcast(expanded.copy(), target_shape)
        np.testing.assert_allclose(reduced, 2 * a)

    def test_scalar_broadcast(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3.0 + 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 2), 3.0))


class TestMatmul:
    def test_matmul_gradcheck_2d(self, rng):
        a = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 2))
        assert_gradcheck(lambda x: ((x @ w) ** 2).sum(), a)

    def test_matmul_gradcheck_right(self, rng):
        a = rng.normal(size=(3, 4))
        x0 = rng.normal(size=(4, 2))
        assert_gradcheck(lambda w: ((Tensor(a) @ w) ** 2).sum(), x0)

    def test_matmul_batched(self, rng):
        a = rng.normal(size=(2, 3, 4))
        assert_gradcheck(lambda x: ((x @ np.swapaxes(a, -1, -2)) ** 2).sum(), a)

    def test_matmul_vector_cases(self, rng):
        v = rng.normal(size=4)
        m = rng.normal(size=(4, 3))
        assert_gradcheck(lambda x: (x @ m).sum(), v)  # vec @ mat wrt vec
        assert_gradcheck(lambda x: (Tensor(m.T) @ x).sum(), v)  # mat @ vec wrt vec
        assert_gradcheck(lambda x: (Tensor(v) @ x).sum(), m)  # vec @ mat wrt mat
        assert_gradcheck(lambda x: (x.transpose(1, 0) @ Tensor(v)).sum(), m)

    def test_matmul_vec_vec(self, rng):
        v = rng.normal(size=5)
        w = rng.normal(size=5)
        assert_gradcheck(lambda x: x @ Tensor(w), v)


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self, rng):
        a = rng.normal(size=(2, 3, 4))
        assert_gradcheck(lambda x: (x.sum(axis=1, keepdims=True) ** 2).sum(), a)
        assert_gradcheck(lambda x: (x.sum(axis=(0, 2)) ** 2).sum(), a)

    def test_mean_matches_numpy(self, rng):
        a = rng.normal(size=(3, 5))
        t = Tensor(a)
        np.testing.assert_allclose(t.mean(axis=0).data, a.mean(axis=0))
        np.testing.assert_allclose(t.mean().data, a.mean())

    def test_reshape_transpose_gradcheck(self, rng):
        a = rng.normal(size=(2, 6))
        assert_gradcheck(lambda x: (x.reshape(3, 4).transpose(1, 0) ** 2).sum(), a)

    def test_T_property(self, rng):
        a = rng.normal(size=(2, 3))
        np.testing.assert_allclose(Tensor(a).T.data, a.T)

    def test_getitem_gradcheck(self, rng):
        a = rng.normal(size=(5, 3))
        idx = np.array([0, 2, 2, 4])
        assert_gradcheck(lambda x: (x[idx] ** 2).sum(), a)

    def test_getitem_slice(self, rng):
        a = rng.normal(size=(4, 4))
        assert_gradcheck(lambda x: (x[1:3, :2] ** 2).sum(), a)


class TestBackwardMechanics:
    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_grad_shape_mismatch(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2
        with pytest.raises(GradientError):
            y.backward(np.ones(4))

    def test_diamond_graph_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3
        b = x * 4
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_reused_node_deep_chain(self):
        x = Tensor([1.5], requires_grad=True)
        y = x
        for _ in range(20):
            y = y + x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [21.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_disables_recording(self):
        x = Tensor([1.0], requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert y._parents == ()
        assert is_grad_enabled()

    def test_no_grad_nesting_restores(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_len(self):
        assert len(Tensor(np.zeros((7, 2)))) == 7
