"""Metrics registry: histogram buckets/percentiles, labeled identity, exposition."""

import json
import math

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestHistogram:
    def test_empty_summary_omits_percentiles(self, registry):
        # Zero observations: percentiles are undefined, so they are left
        # out of the summary entirely rather than reported as null.
        h = registry.histogram("lat")
        summary = h.summary()
        assert summary == {"count": 0, "sum": 0.0}
        assert "p50" not in summary and "p99" not in summary
        assert h.percentile(0.5) is None

    def test_single_sample_reports_itself_at_every_quantile(self, registry):
        h = registry.histogram("lat")
        h.observe(0.0042)
        summary = h.summary()
        assert summary["count"] == 1
        assert summary["min"] == summary["max"] == 0.0042
        assert summary["p50"] == pytest.approx(0.0042)
        assert summary["p90"] == pytest.approx(0.0042)
        assert summary["p99"] == pytest.approx(0.0042)

    def test_bucket_boundary_is_inclusive_upper(self, registry):
        # Prometheus `le` semantics: a value equal to a bound counts in
        # that bound's bucket, not the next one.
        h = registry.histogram("lat", buckets=(0.005, 0.01))
        h.observe(0.005)
        assert h.cumulative_buckets() == [(0.005, 1), (0.01, 1), (math.inf, 1)]

    def test_overflow_lands_in_inf_bucket(self, registry):
        h = registry.histogram("lat", buckets=(0.001, 0.01))
        h.observe(5.0)
        assert h.cumulative_buckets() == [(0.001, 0), (0.01, 0), (math.inf, 1)]
        assert h.percentile(0.5) == 5.0  # +Inf bucket falls back to max

    def test_heavy_tail_separates_p50_and_p99(self, registry):
        h = registry.histogram("lat")
        for _ in range(98):
            h.observe(0.002)
        h.observe(1.9)
        h.observe(2.1)
        summary = h.summary()
        assert summary["count"] == 100
        assert summary["p50"] < 0.01
        assert summary["p99"] > 1.0
        assert summary["p50"] < summary["p90"] <= summary["p99"]
        assert summary["max"] == 2.1

    def test_percentiles_clamped_to_observed_range(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 10.0))
        h.observe(2.0)
        h.observe(3.0)
        assert 2.0 <= h.percentile(0.5) <= 3.0
        assert h.percentile(0.99) <= 3.0

    def test_sum_and_mean(self, registry):
        h = registry.histogram("lat")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        summary = h.summary()
        assert summary["sum"] == pytest.approx(0.6)
        assert summary["mean"] == pytest.approx(0.2)

    def test_merge_sums_same_bucket_histograms(self, registry):
        a = registry.histogram("lat", buckets=(0.01, 0.1), endpoint="expand")
        b = registry.histogram("lat", buckets=(0.01, 0.1), endpoint="target")
        a.observe(0.005)
        a.observe(0.05)
        b.observe(0.2)
        from repro.obs import Histogram

        merged = Histogram.merge([a, b])
        assert merged.count == 3
        assert merged.sum == pytest.approx(0.255)
        assert merged.min == 0.005 and merged.max == 0.2
        assert merged.cumulative_buckets() == [(0.01, 1), (0.1, 2), (math.inf, 3)]

    def test_merge_empty_list_is_none_and_mismatch_rejected(self, registry):
        from repro.obs import Histogram

        assert Histogram.merge([]) is None
        a = registry.histogram("x", buckets=(0.1,))
        b = registry.histogram("y", buckets=(0.2,))
        with pytest.raises(ConfigError):
            Histogram.merge([a, b])

    def test_invalid_buckets_rejected(self, registry):
        with pytest.raises(ConfigError):
            registry.histogram("bad", buckets=(0.5, 0.1))

    def test_conflicting_buckets_rejected(self, registry):
        registry.histogram("lat", buckets=(0.1, 1.0))
        with pytest.raises(ConfigError):
            registry.histogram("lat", buckets=(0.2, 2.0))


class TestLabeledIdentity:
    def test_same_name_and_labels_aggregate(self, registry):
        registry.counter("req", endpoint="expand").inc()
        registry.counter("req", endpoint="expand").inc(2)
        assert registry.get_value("req", endpoint="expand") == 3

    def test_label_order_is_irrelevant(self, registry):
        a = registry.counter("req", endpoint="expand", status="ok")
        b = registry.counter("req", status="ok", endpoint="expand")
        assert a is b

    def test_different_labels_are_separate_series(self, registry):
        registry.counter("req", endpoint="expand").inc()
        registry.counter("req", endpoint="target").inc(5)
        assert registry.get_value("req", endpoint="expand") == 1
        assert registry.get_value("req", endpoint="target") == 5

    def test_type_conflict_rejected(self, registry):
        registry.counter("thing")
        with pytest.raises(ConfigError):
            registry.gauge("thing")

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ConfigError):
            registry.counter("req").inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        g = registry.gauge("version")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2


class TestExposition:
    def test_prometheus_text_format(self, registry):
        registry.counter("req_total", help="requests", endpoint="expand").inc(2)
        registry.gauge("active_version", kind="graph").set(7)
        registry.histogram("lat", buckets=(0.01, 0.1)).observe(0.05)
        text = registry.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{endpoint="expand"} 2' in text
        assert 'active_version{kind="graph"} 7' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="0.01"} 0' in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_label_values_escaped(self, registry):
        registry.counter("req", phrase='say "hi"\n').inc()
        text = registry.render_prometheus()
        assert 'phrase="say \\"hi\\"\\n"' in text

    def test_snapshot_omits_percentiles_of_empty_histograms(self, registry):
        registry.histogram("lat", endpoint="expand")  # series exists, no samples
        entry = registry.snapshot()["histograms"]["lat"][0]
        assert entry["count"] == 0 and entry["sum"] == 0.0
        assert "p50" not in entry and "p90" not in entry and "p99" not in entry

    def test_snapshot_is_json_safe(self, registry):
        registry.counter("req", endpoint="expand").inc()
        registry.histogram("lat").observe(0.2)
        registry.gauge("v").set(1)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # no numpy scalars, no inf
        assert snapshot["counters"]["req"][0]["value"] == 1
        assert snapshot["histograms"]["lat"][0]["count"] == 1
        assert snapshot["histograms"]["lat"][0]["p50"] == pytest.approx(0.2)

    def test_collector_runs_at_readout_time(self, registry):
        source = {"hits": 0}
        series = registry.counter("cache_hits_total")
        registry.add_collector(lambda: series.set_total(source["hits"]))
        source["hits"] = 9
        assert 'cache_hits_total 9' in registry.render_prometheus()
        source["hits"] = 12
        assert registry.snapshot()["counters"]["cache_hits_total"][0]["value"] == 12


class TestPrometheusConformance:
    """Text-format 0.0.4 edge cases a real scraper would reject."""

    def test_help_escapes_backslash_and_newline(self, registry):
        registry.counter("req", help="path C:\\tmp\nsecond line").inc()
        text = registry.render_prometheus()
        assert "# HELP req path C:\\\\tmp\\nsecond line" in text
        assert "\nsecond line" not in text.split("# TYPE")[0].replace(
            "\\nsecond line", ""
        )  # the raw newline never reaches the HELP line

    def test_help_does_not_escape_quotes(self, registry):
        # Quotes are legal in HELP text — only label *values* escape them.
        registry.counter("req", help='say "hi"').inc()
        assert '# HELP req say "hi"' in registry.render_prometheus()

    def test_label_values_escape_backslash_quote_newline(self, registry):
        registry.counter("req", phrase='a\\b "c"\nd').inc()
        text = registry.render_prometheus()
        assert 'phrase="a\\\\b \\"c\\"\\nd"' in text
        # No un-escaped newline inside any sample line.
        for line in text.splitlines():
            assert "\n" not in line

    def test_histogram_renders_explicit_inf_bucket_last(self, registry):
        h = registry.histogram("lat", buckets=(0.01,))
        h.observe(5.0)
        lines = registry.render_prometheus().splitlines()
        bucket_lines = [l for l in lines if l.startswith("lat_bucket")]
        assert bucket_lines[-1] == 'lat_bucket{le="+Inf"} 1'
        # +Inf is cumulative: it must equal lat_count.
        assert 'lat_count 1' in lines

    def test_inf_bucket_cumulative_equals_count_with_labels(self, registry):
        h = registry.histogram("lat", buckets=(0.01, 0.1), endpoint="expand")
        for v in (0.001, 0.05, 9.0):
            h.observe(v)
        text = registry.render_prometheus()
        assert 'lat_bucket{endpoint="expand",le="+Inf"} 3' in text
        assert 'lat_count{endpoint="expand"} 3' in text

    def test_series_accessor_returns_label_pairs(self, registry):
        registry.counter("req", endpoint="a", status="ok").inc(2)
        registry.counter("req", endpoint="b", status="error").inc()
        pairs = registry.series("req")
        assert len(pairs) == 2
        labels = {tuple(sorted(d.items())) for d, _ in pairs}
        assert (("endpoint", "a"), ("status", "ok")) in labels
        assert registry.series("nope") == []


class TestDisabledRegistry:
    def test_everything_is_a_cheap_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("req").inc()
        registry.gauge("v").set(3)
        registry.histogram("lat").observe(0.5)
        registry.add_collector(lambda: 1 / 0)  # never stored, never run
        assert registry.render_prometheus() == ""
        assert registry.snapshot() == {"enabled": False}
        assert registry.get_value("req") is None
