"""Registry crash safety: atomic writes, checksum proofs, quarantine.

The regression this file pins down: a truncated or bit-flipped artifact on
disk must be *quarantined* — moved aside, its record dropped, the previous
generation resolving again — never served and never allowed to crash
startup.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.errors import CorruptArtifactError, StorageError
from repro.preference.store import PreferenceStore
from repro.resilience import FaultInjector, InjectedFault, atomic_write_bytes
from repro.serving import KIND_PREFERENCES, ArtifactRegistry
from repro.serving.registry import MANIFEST_NAME, QUARANTINE_DIR
from repro.text.sequence_extractor import UserEntitySequence


def built_preferences(num_users=6, num_entities=10, seed=0) -> PreferenceStore:
    rng = np.random.default_rng(seed)
    embeddings = rng.normal(size=(num_entities, 4))
    sequences = {
        u: UserEntitySequence(u, list(rng.integers(0, num_entities, size=5)))
        for u in range(num_users)
    }
    return PreferenceStore(embeddings, head_size=4).build(sequences, num_users)


class TestAtomicWrites:
    def test_atomic_write_replaces_not_appends(self, tmp_path):
        path = tmp_path / "file.bin"
        atomic_write_bytes(path, b"first version, longer payload")
        atomic_write_bytes(path, b"second")
        assert path.read_bytes() == b"second"

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_bytes(tmp_path / "file.bin", b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["file.bin"]

    def test_publish_records_checksum(self, tmp_path):
        registry = ArtifactRegistry(root=tmp_path)
        record = registry.publish_preferences(built_preferences())
        assert record.source == "file"
        assert record.checksum is not None and len(record.checksum) == 64
        # No torn temp preference files linger after the atomic rename.
        assert not list(tmp_path.glob(".tmp-preferences-*"))

    def test_manifest_survives_restart(self, tmp_path):
        first = ArtifactRegistry(root=tmp_path)
        record = first.publish_preferences(built_preferences(), tag="daily-x")
        reopened = ArtifactRegistry(root=tmp_path)
        latest = reopened.latest(KIND_PREFERENCES)
        assert latest == record
        loaded = reopened.open_preferences()
        assert loaded.version_tag == "daily-x"


class TestQuarantine:
    def test_truncated_artifact_is_quarantined_not_served(self, tmp_path):
        registry = ArtifactRegistry(root=tmp_path)
        good = registry.publish_preferences(built_preferences(seed=1), tag="good")
        bad = registry.publish_preferences(built_preferences(seed=2), tag="bad")
        bad_path = tmp_path / f"preferences-{bad.version:06d}.npz"
        bad_path.write_bytes(bad_path.read_bytes()[:-50])  # torn write
        # Lose the redundant memmap sidecar too — with either form intact
        # the version would still serve correctly.
        shutil.rmtree(tmp_path / f"preferences-mm-{bad.version:06d}")

        with pytest.raises(CorruptArtifactError):
            registry.open_preferences(bad.version)

        # The file moved to quarantine/, the record dropped, and latest()
        # falls back to the previous good generation.
        assert (tmp_path / QUARANTINE_DIR / bad_path.name).exists()
        assert not bad_path.exists()
        assert registry.latest(KIND_PREFERENCES).version == good.version
        assert registry.open_preferences().version_tag == "good"
        assert registry.quarantined[-1]["reason"].startswith("checksum mismatch")

    def test_corrupt_sidecar_falls_back_to_npz(self, tmp_path):
        registry = ArtifactRegistry(root=tmp_path)
        record = registry.publish_preferences(built_preferences(seed=3), tag="daily")
        mm_dir = tmp_path / f"preferences-mm-{record.version:06d}"
        matrix = mm_dir / "user_matrix.npy"
        matrix.write_bytes(matrix.read_bytes()[:-40])  # torn sidecar array

        # The open still succeeds — served from the intact .npz — while
        # the bad sidecar is quarantined and the record demoted.
        store = registry.open_preferences(record.version)
        assert store.version_tag == "daily"
        assert store.storage == "npz"
        assert (tmp_path / QUARANTINE_DIR / mm_dir.name).exists()
        assert not mm_dir.exists()
        demoted = registry.latest(KIND_PREFERENCES)
        assert demoted.aux_path is None and demoted.format == "npz"
        assert "sidecar" in registry.quarantined[-1]["reason"]
        # The demotion is durable: a restart serves the .npz directly.
        reopened = ArtifactRegistry(root=tmp_path)
        assert reopened.open_preferences(record.version).storage == "npz"

    def test_corrupt_artifact_detected_at_startup(self, tmp_path):
        first = ArtifactRegistry(root=tmp_path)
        good = first.publish_preferences(built_preferences(seed=1), tag="good")
        bad = first.publish_preferences(built_preferences(seed=2), tag="bad")
        bad_path = tmp_path / f"preferences-{bad.version:06d}.npz"
        data = bytearray(bad_path.read_bytes())
        data[100] ^= 0xFF
        bad_path.write_bytes(bytes(data))

        reopened = ArtifactRegistry(root=tmp_path)  # must not raise
        assert reopened.latest(KIND_PREFERENCES).version == good.version
        assert len(reopened.quarantined) == 1
        assert (tmp_path / QUARANTINE_DIR / bad_path.name).exists()

    def test_missing_artifact_file_quarantined_at_startup(self, tmp_path):
        first = ArtifactRegistry(root=tmp_path)
        record = first.publish_preferences(built_preferences())
        (tmp_path / f"preferences-{record.version:06d}.npz").unlink()

        reopened = ArtifactRegistry(root=tmp_path)
        assert reopened.latest(KIND_PREFERENCES) is None
        assert reopened.quarantined[-1]["reason"] == "artifact file missing"

    def test_torn_manifest_does_not_crash_startup(self, tmp_path):
        first = ArtifactRegistry(root=tmp_path)
        first.publish_preferences(built_preferences())
        (tmp_path / MANIFEST_NAME).write_text("{torn", encoding="utf-8")

        reopened = ArtifactRegistry(root=tmp_path)
        assert reopened.latest(KIND_PREFERENCES) is None
        assert reopened.quarantined[-1]["reason"] == "unparseable registry manifest"

    def test_torn_drift_report_is_skipped(self, tmp_path):
        first = ArtifactRegistry(root=tmp_path)
        (tmp_path / "drift-graph-000002.json").write_text("]broken", encoding="utf-8")
        reopened = ArtifactRegistry(root=tmp_path)
        assert reopened.drift_reports() == []
        assert reopened.quarantined[-1]["reason"] == "unparseable drift report"


class TestFaultSeams:
    def test_failed_manifest_write_rolls_back_the_record(self, tmp_path):
        faults = FaultInjector()
        registry = ArtifactRegistry(root=tmp_path, faults=faults)
        registry.publish_preferences(built_preferences(seed=1))

        # publish checks registry.write once up front and once in
        # _save_manifest; fail only the manifest write.
        faults.fail_at(
            "registry.write", faults.calls("registry.write") + 2,
            exception=InjectedFault,
        )
        with pytest.raises(InjectedFault):
            registry.publish_preferences(built_preferences(seed=2))

        # The half-published record must not linger: the retry re-publishes
        # under the same next version, and the durable manifest agrees.
        assert registry.latest(KIND_PREFERENCES).version == 1
        record = registry.publish_preferences(built_preferences(seed=2))
        assert record.version == 2
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text(encoding="utf-8"))
        versions = [r["version"] for r in manifest["records"][KIND_PREFERENCES]]
        assert versions == [1, 2]

    def test_read_seam_fires_on_open(self, tmp_path):
        faults = FaultInjector()
        registry = ArtifactRegistry(root=tmp_path, faults=faults)
        registry.publish_preferences(built_preferences())
        faults.fail_next("registry.read", 1)
        with pytest.raises(InjectedFault):
            registry.open_preferences()
        assert registry.open_preferences() is not None  # next attempt heals


class TestUnboundStore:
    def test_store_record_without_bound_store_raises_storage_error(self, tmp_path):
        first = ArtifactRegistry(root=tmp_path)
        from repro.graph import GraphStore

        store = GraphStore(tmp_path / "gs", num_nodes=6)
        store.put_edges([(0, 1)], weights=[0.5])
        store.commit_version("w0")
        first.publish_graph(store)

        reopened = ArtifactRegistry(root=tmp_path)  # store not re-bound
        with pytest.raises(StorageError, match="not bound"):
            reopened.open_graph()
