"""Phase profiler: deterministic timing, attribution, resource accounting."""

import numpy as np
import pytest

from repro.graph import EntityGraph
from repro.graph.csr import CSRGraph
from repro.graph.khop import k_hop_expansion
from repro.obs import ManualClock
from repro.obs.context import RequestContext, bind_context, unbind_context
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    NOOP_PROFILER,
    PhaseProfiler,
    ResourceAccountant,
    current_profiler,
    mmap_open_counts,
    record_mmap_open,
)


@pytest.fixture()
def clock():
    return ManualClock(start=1_000.0)


class TestPhaseAccumulation:
    def test_nested_phases_accumulate_per_stack_path(self, clock):
        profiler = PhaseProfiler(clock=clock)
        with profiler.phase("root"):
            clock.advance(0.1)
            with profiler.phase("child"):
                clock.advance(0.3)
            with profiler.phase("child"):
                clock.advance(0.2)
        report = profiler.report()
        by_phase = {row["phase"]: row for row in report["phases"]}
        assert by_phase["root"]["total_s"] == pytest.approx(0.6)
        assert by_phase["root"]["self_s"] == pytest.approx(0.1)
        assert by_phase["root;child"]["total_s"] == pytest.approx(0.5)
        assert by_phase["root;child"]["count"] == 2
        assert report["roots"]["root"]["attributed"] == pytest.approx(0.5 / 0.6)

    def test_same_child_name_under_different_parents_stays_distinct(self, clock):
        profiler = PhaseProfiler(clock=clock)
        with profiler.phase("a"):
            with profiler.phase("step"):
                clock.advance(0.1)
        with profiler.phase("b"):
            with profiler.phase("step"):
                clock.advance(0.2)
        by_phase = {row["phase"]: row for row in profiler.report()["phases"]}
        assert by_phase["a;step"]["total_s"] == pytest.approx(0.1)
        assert by_phase["b;step"]["total_s"] == pytest.approx(0.2)

    def test_leaf_root_attribution_is_none(self, clock):
        profiler = PhaseProfiler(clock=clock)
        with profiler.phase("leaf"):
            clock.advance(0.1)
        assert profiler.report()["roots"]["leaf"]["attributed"] is None

    def test_reset_clears_totals(self, clock):
        profiler = PhaseProfiler(clock=clock)
        with profiler.phase("x"):
            clock.advance(0.1)
        profiler.reset()
        assert profiler.report()["phases"] == []

    def test_collapsed_stack_lines(self, clock):
        profiler = PhaseProfiler(clock=clock)
        with profiler.phase("root"):
            clock.advance(0.001)
            with profiler.phase("child"):
                clock.advance(0.002)
        lines = profiler.collapsed().splitlines()
        assert "root 1000" in lines
        assert "root;child 2000" in lines

    def test_disabled_profiler_hands_out_shared_noop(self, clock):
        profiler = PhaseProfiler(clock=clock, enabled=False)
        first = profiler.phase("x")
        second = profiler.phase("y")
        assert first is second
        with first:
            clock.advance(1.0)
        assert profiler.report()["phases"] == []


class TestAmbientProfiler:
    def test_outside_a_request_kernels_get_the_noop(self):
        assert current_profiler() is NOOP_PROFILER

    def test_request_context_carries_the_profiler(self, clock):
        profiler = PhaseProfiler(clock=clock)
        ctx = RequestContext(profiler=profiler)
        token = bind_context(ctx)
        try:
            assert current_profiler() is profiler
        finally:
            unbind_context(token)

    def test_context_without_profiler_falls_back_to_noop(self):
        token = bind_context(RequestContext())
        try:
            assert current_profiler() is NOOP_PROFILER
        finally:
            unbind_context(token)


def _chain_graph(num_nodes=600, fanout=4):
    """A layered graph big enough that a cold expansion does real work."""
    edges, weights, relations = [], [], []
    for u in range(num_nodes - fanout):
        for j in range(1, fanout + 1):
            edges.append((u, u + j))
            weights.append(0.5 + (j % 3) * 0.1)
            relations.append(0)
    return EntityGraph.from_edge_list(num_nodes, edges, weights, relations)


class TestExpansionAttribution:
    def test_cold_csr_expansion_is_90pct_attributed(self):
        """Acceptance: ≥90% of a cold CSR expansion's wall time lands in
        named child phases of ``expand.csr`` (real clock, real work)."""
        graph = _chain_graph()
        snapshot = CSRGraph.from_entity_graph(graph)
        profiler = PhaseProfiler()  # real clock: attribution needs real time
        ctx = RequestContext(profiler=profiler)
        token = bind_context(ctx)
        try:
            # Several cold expansions accumulate into one profile so a
            # single scheduler hiccup can't decide the ratio.
            for _ in range(5):
                k_hop_expansion(
                    snapshot, seeds=[0, 7, 50], depth=3, max_neighbors_per_node=25
                )
        finally:
            unbind_context(token)
        report = profiler.report()
        root = report["roots"]["expand.csr"]
        assert root["count"] == 5
        assert root["attributed"] is not None
        assert root["attributed"] >= 0.90
        phases = {row["phase"] for row in report["phases"]}
        assert "expand.csr;seed_init" in phases
        assert "expand.csr;hop.gather" in phases
        assert "expand.csr;collect" in phases

    def test_unprofiled_expansion_results_are_identical(self):
        graph = _chain_graph(num_nodes=200)
        snapshot = CSRGraph.from_entity_graph(graph)
        plain = k_hop_expansion(snapshot, seeds=[0, 3], depth=2)
        token = bind_context(RequestContext(profiler=PhaseProfiler()))
        try:
            profiled = k_hop_expansion(snapshot, seeds=[0, 3], depth=2)
        finally:
            unbind_context(token)
        assert profiled.hops == plain.hops
        assert profiled.scores == plain.scores
        assert profiled.parents == plain.parents


class TestResourceAccounting:
    def test_mmap_open_counter_deltas(self):
        before = mmap_open_counts().get("testkind", 0)
        record_mmap_open("testkind")
        record_mmap_open("testkind")
        assert mmap_open_counts()["testkind"] == before + 2

    def test_usage_without_registry_reports_only_mmap_opens(self):
        accountant = ResourceAccountant(metrics=None)
        usage = accountant.usage()
        assert usage["artifacts"] == {}
        assert isinstance(usage["mmap_opens"], dict)

    def test_usage_walks_registry_records(self, tmp_path):
        artifact = tmp_path / "gen-1"
        artifact.mkdir()
        (artifact / "data.npy").write_bytes(b"x" * 100)

        class _Record:
            path = str(artifact)
            aux_path = None

        class _Registry:
            def records(self, kind):
                return [_Record()] if kind == "graph" else []

        accountant = ResourceAccountant(metrics=None, registry=_Registry())
        usage = accountant.usage()
        assert usage["artifacts"]["graph"] == {
            "generations": 1, "disk_bytes": 100, "shards": 1,
        }
        assert usage["artifacts"]["preferences"] == {
            "generations": 0, "disk_bytes": 0, "shards": 1,
        }

    def test_collector_exports_gauges_through_registry(self, tmp_path):
        artifact = tmp_path / "gen-1"
        artifact.mkdir()
        (artifact / "data.npy").write_bytes(b"y" * 64)

        class _Record:
            path = str(artifact)
            aux_path = None

        class _Registry:
            def records(self, kind):
                return [_Record()] if kind == "graph" else []

        metrics = MetricsRegistry()
        ResourceAccountant(metrics=metrics, registry=_Registry())
        text = metrics.render_prometheus()
        assert 'artifact_disk_bytes{kind="graph"} 64' in text
        assert 'artifact_generations{kind="graph"} 1' in text
