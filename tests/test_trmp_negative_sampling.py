"""Anchor construction and hard-negative mining."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import EntityGraph
from repro.trmp import hard_negative_pairs, mixed_negative_pairs, semantic_anchor_pairs


@pytest.fixture()
def clustered():
    rng = np.random.default_rng(0)
    centers = rng.normal(size=(3, 6)) * 4
    vectors = np.concatenate([c + rng.normal(size=(8, 6)) * 0.2 for c in centers])
    # Graph: ring within each cluster, so there are close non-edges.
    pairs = []
    for c in range(3):
        base = c * 8
        pairs += [(base + i, base + (i + 1) % 8) for i in range(8)]
    graph = EntityGraph.from_edge_list(24, pairs)
    return graph, vectors


class TestAnchors:
    def test_anchors_are_graph_edges(self, clustered):
        graph, vectors = clustered
        anchors = semantic_anchor_pairs(graph, vectors, similarity_quantile=0.5)
        for u, v in anchors:
            assert graph.has_edge(int(u), int(v))

    def test_both_orientations_present(self, clustered):
        graph, vectors = clustered
        anchors = semantic_anchor_pairs(graph, vectors, similarity_quantile=0.5)
        keys = {tuple(p) for p in anchors}
        for u, v in list(keys)[:10]:
            assert (v, u) in keys

    def test_quantile_controls_count(self, clustered):
        graph, vectors = clustered
        strict = semantic_anchor_pairs(graph, vectors, similarity_quantile=0.9)
        loose = semantic_anchor_pairs(graph, vectors, similarity_quantile=0.1)
        assert len(strict) < len(loose)

    def test_empty_graph(self):
        graph = EntityGraph.from_edge_list(5, [])
        anchors = semantic_anchor_pairs(graph, np.random.rand(5, 3))
        assert anchors.shape == (0, 2)

    def test_invalid_quantile(self, clustered):
        graph, vectors = clustered
        with pytest.raises(ConfigError):
            semantic_anchor_pairs(graph, vectors, similarity_quantile=1.0)


class TestHardNegatives:
    def test_hard_negatives_not_edges_and_close(self, clustered):
        graph, vectors = clustered
        unit = vectors / np.linalg.norm(vectors, axis=1, keepdims=True)
        hard = hard_negative_pairs(graph, vectors, count=10, rng=0)
        all_sims = unit @ unit.T
        iu = np.triu_indices(24, 1)
        for u, v in hard:
            assert not graph.has_edge(int(u), int(v))
        hard_sims = [all_sims[u, v] for u, v in hard]
        assert np.mean(hard_sims) > np.mean(all_sims[iu])

    def test_fully_connected_raises(self):
        pairs = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        graph = EntityGraph.from_edge_list(5, pairs)
        with pytest.raises(ConfigError):
            hard_negative_pairs(graph, np.random.rand(5, 3), count=3, top_k=4, rng=0)


class TestMixed:
    def test_counts_and_validity(self, clustered):
        graph, vectors = clustered
        mixed = mixed_negative_pairs(graph, vectors, count=20, hard_fraction=0.4, rng=0)
        assert len(mixed) == 20
        for u, v in mixed:
            assert not graph.has_edge(int(u), int(v))

    def test_fraction_validation(self, clustered):
        graph, vectors = clustered
        with pytest.raises(ConfigError):
            mixed_negative_pairs(graph, vectors, count=10, hard_fraction=1.5)

    def test_all_random(self, clustered):
        graph, vectors = clustered
        mixed = mixed_negative_pairs(graph, vectors, count=10, hard_fraction=0.0, rng=0)
        assert len(mixed) == 10
