"""Deeper checks of baseline internals: DRNL, SEAL subgraphs, VGAE parts."""

import numpy as np
import pytest

from repro.baselines import make_baseline
from repro.baselines.seal import SEALLinkPredictor, _bfs_distances, drnl_labels
from repro.graph import EntityGraph


class TestBFSDistances:
    def test_matches_networkx(self):
        import networkx as nx

        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 2, 3, 4])
        ours = _bfs_distances(6, src, dst, source=0)
        g = nx.Graph(list(zip(src.tolist(), dst.tolist())))
        g.add_node(5)
        theirs = nx.single_source_shortest_path_length(g, 0)
        for node in range(5):
            assert ours[node] == theirs[node]
        assert ours[5] == 99  # unreachable sentinel


class TestDRNL:
    def test_canonical_small_values(self):
        # (1,1): d=2 -> 1 + 1 + 1*(1+0-1) = 2
        assert drnl_labels(np.array([1]), np.array([1]))[0] == 2
        # (1,2): d=3 -> 1 + 1 + 1*(1+1-1) = 3
        assert drnl_labels(np.array([1]), np.array([2]))[0] == 3
        # (2,2): d=4 -> 1 + 2 + 2*(2+0-1) = 5
        assert drnl_labels(np.array([2]), np.array([2]))[0] == 5

    def test_symmetric(self, rng):
        du = rng.integers(0, 6, size=50)
        dv = rng.integers(0, 6, size=50)
        np.testing.assert_array_equal(drnl_labels(du, dv), drnl_labels(dv, du))


class TestSEALSubgraphs:
    @pytest.fixture()
    def seal(self, split, candidate):
        model = SEALLinkPredictor(max_neighbors=5)
        model._graph = split.train_graph
        model._features = candidate.node_features
        return model

    def test_target_edge_hidden(self, seal, split):
        lo, hi = split.train_graph.canonical_pairs()
        u, v = int(lo[0]), int(hi[0])
        nodes, src, dst, labels = seal._enclosing_subgraph(u, v)
        local = {int(n): i for i, n in enumerate(nodes)}
        forbidden = {(local[u], local[v]), (local[v], local[u])}
        assert not (set(zip(src.tolist(), dst.tolist())) & forbidden)

    def test_targets_first_with_label_one(self, seal, split):
        u, v = int(split.test_pos[0][0]), int(split.test_pos[0][1])
        nodes, _, _, labels = seal._enclosing_subgraph(u, v)
        assert nodes[0] == u and nodes[1] == v
        assert labels[0] == 1 and labels[1] == 1

    def test_neighbor_cap_respected(self, seal, split):
        u, v = int(split.test_pos[1][0]), int(split.test_pos[1][1])
        nodes, _, _, _ = seal._enclosing_subgraph(u, v)
        assert len(nodes) <= 2 + 2 * seal.max_neighbors

    def test_batch_block_diagonal(self, seal, split):
        pairs = split.test_pos[:3]
        batch = seal._build_batch(pairs)
        assert batch.num_graphs == 3
        assert batch.graph_ids.max() == 2
        # Edges never cross graph boundaries.
        for s, d in zip(batch.src, batch.dst):
            assert batch.graph_ids[s] == batch.graph_ids[d]


class TestVGAEInternals:
    def test_latent_statistics_regularised(self, split, candidate):
        model = make_baseline("VGAE", candidate.node_features.shape[1])
        model.epochs = 40
        model.kl_weight = 1.0  # strong KL pull for the test
        model.fit(split, candidate.node_features)
        mu = model._mu
        # With a strong KL term the posterior means stay near the prior.
        assert np.abs(mu.mean()) < 0.5
        assert mu.std() < 3.0


class TestGNNPredictorExtras:
    def test_node_embeddings_exposed(self, split, candidate):
        model = make_baseline("GeniePath", candidate.node_features.shape[1])
        model.epochs = 5
        model.fit(split, candidate.node_features)
        z = model.node_embeddings
        assert z.shape[0] == split.num_nodes
        assert np.isfinite(z).all()

    def test_alpc_reports_contrastive_loss_only_when_enabled(self, split, candidate, e_semantic):
        from repro.trmp import ALPCConfig, ALPCLinkPredictor

        with_cl = ALPCLinkPredictor(ALPCConfig(epochs=2, beta=1.0, seed=0))
        with_cl.fit(split, candidate.node_features, e_semantic)
        assert max(with_cl.report.cl_losses) > 0

        without_cl = ALPCLinkPredictor(ALPCConfig(epochs=2, beta=0.0, seed=0))
        without_cl.fit(split, candidate.node_features, e_semantic)
        assert max(without_cl.report.cl_losses) == 0
