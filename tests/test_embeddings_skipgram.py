"""Skip-gram with negative sampling."""

import numpy as np
import pytest

from repro.embeddings import SkipGramConfig, SkipGramModel
from repro.errors import ConfigError, NotFittedError


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SkipGramConfig(dim=0).validate()
        with pytest.raises(ConfigError):
            SkipGramConfig(lr=0.01, min_lr=0.1).validate()
        SkipGramConfig().validate()


class TestPairs:
    def test_window_pairs(self):
        model = SkipGramModel(5, SkipGramConfig(window=1, epochs=1))
        pairs = model._build_pairs([[0, 1, 2]])
        as_set = {tuple(p) for p in pairs}
        assert as_set == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_wider_window(self):
        model = SkipGramModel(5, SkipGramConfig(window=2, epochs=1))
        pairs = model._build_pairs([[0, 1, 2]])
        assert (np.array([0, 2]) == pairs).all(axis=1).any()

    def test_empty_sequences_raise(self):
        model = SkipGramModel(5, SkipGramConfig(epochs=1))
        with pytest.raises(ConfigError):
            model.fit([[3]])


class TestTraining:
    def test_not_fitted_guard(self):
        model = SkipGramModel(5)
        with pytest.raises(NotFittedError):
            _ = model.vectors

    def test_cooccurring_items_end_up_similar(self):
        # Two disjoint "topics": {0..4} and {5..9} never co-occur.
        rng = np.random.default_rng(0)
        seqs = []
        for _ in range(200):
            base = 0 if rng.random() < 0.5 else 5
            seqs.append(list(base + rng.integers(0, 5, size=8)))
        model = SkipGramModel(10, SkipGramConfig(dim=16, epochs=5, seed=0)).fit(seqs, rng=1)
        v = model.normalized_vectors()
        within = np.mean([v[i] @ v[j] for i in range(5) for j in range(5) if i != j])
        across = np.mean([v[i] @ v[j + 5] for i in range(5) for j in range(5)])
        assert within > across + 0.2

    def test_similarity_symmetric(self):
        seqs = [[0, 1, 2, 3]] * 30
        model = SkipGramModel(4, SkipGramConfig(epochs=2)).fit(seqs)
        assert model.similarity(0, 1) == pytest.approx(model.similarity(1, 0))

    def test_normalized_vectors_unit_norm(self):
        seqs = [[0, 1, 2, 3, 0, 1]] * 20
        model = SkipGramModel(4, SkipGramConfig(epochs=2)).fit(seqs)
        norms = np.linalg.norm(model.normalized_vectors(), axis=1)
        np.testing.assert_allclose(norms, np.ones(4), atol=1e-9)

    def test_deterministic_given_seed(self):
        seqs = [[0, 1, 2, 3, 4] * 3] * 10
        a = SkipGramModel(5, SkipGramConfig(epochs=2, seed=7)).fit(seqs, rng=9).vectors
        b = SkipGramModel(5, SkipGramConfig(epochs=2, seed=7)).fit(seqs, rng=9).vectors
        np.testing.assert_allclose(a, b)

    def test_vectors_stay_finite_with_popular_items(self):
        # Item 0 dominates every sequence — the per-row update normalisation
        # must keep training stable.
        rng = np.random.default_rng(3)
        seqs = [[0] + list(rng.integers(0, 20, size=10)) for _ in range(100)]
        model = SkipGramModel(20, SkipGramConfig(epochs=5, lr=0.1)).fit(seqs)
        assert np.isfinite(model.vectors).all()
        assert np.linalg.norm(model.vectors, axis=1).max() < 50
