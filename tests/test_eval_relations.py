"""Mined-relation evaluation protocol (Table I / II ACC)."""

import numpy as np
import pytest

from repro.eval import AnnotatorPanel, accept_mask, evaluate_mined_relations
from repro.eval.relations import calibrate_global_threshold


class OracleModel:
    """Scores pairs by ground-truth relatedness (duck-typed predictor)."""

    name = "Oracle"

    def __init__(self, world):
        self.world = world

    def predict_pairs(self, pairs):
        return np.array([self.world.relatedness(int(u), int(v)) for u, v in pairs])


class AdaptiveOracle(OracleModel):
    """Same oracle but exposing an adaptive acceptance rule."""

    name = "AdaptiveOracle"

    def accept_pairs(self, pairs):
        return self.predict_pairs(pairs) > 0.5


class TestAcceptMask:
    def test_prefers_adaptive_rule(self, world, split):
        model = AdaptiveOracle(world)
        pairs = split.test_pos[:20]
        mask = accept_mask(model, pairs)
        np.testing.assert_array_equal(mask, model.accept_pairs(pairs))

    def test_global_threshold_without_split(self, world, split):
        model = OracleModel(world)
        pairs = split.test_pos[:20]
        mask = accept_mask(model, pairs)  # falls back to 0.5
        np.testing.assert_array_equal(mask, model.predict_pairs(pairs) >= 0.5)


class TestCalibration:
    def test_calibrated_threshold_separates_training_data(self, world, split):
        model = OracleModel(world)
        threshold = calibrate_global_threshold(model, split)
        assert 0.0 < threshold < 1.0
        # The oracle's calibrated threshold should accept most train
        # positives and few train negatives.
        pos_scores = model.predict_pairs(split.train_pos)
        neg_scores = model.predict_pairs(split.train_neg)
        assert (pos_scores >= threshold).mean() > (neg_scores >= threshold).mean() + 0.2


class TestMinedReport:
    def test_oracle_gets_high_acc(self, world, split):
        panel = AnnotatorPanel(world)
        report = evaluate_mined_relations(AdaptiveOracle(world), split, panel)
        assert report.name == "AdaptiveOracle"
        assert report.acc > 0.85
        assert 0 < report.num_accepted <= report.num_pool
        assert 0 < report.acceptance_rate < 1

    def test_reject_all_model(self, world, split):
        class RejectAll:
            name = "RejectAll"

            def predict_pairs(self, pairs):
                return np.zeros(len(pairs))

            def accept_pairs(self, pairs):
                return np.zeros(len(pairs), dtype=bool)

        panel = AnnotatorPanel(world)
        report = evaluate_mined_relations(RejectAll(), split, panel)
        assert report.num_accepted == 0
        assert report.acc == 0.0

    def test_constant_score_model_accepts_everything_after_calibration(self, world, split):
        class Constant:
            name = "Constant"

            def predict_pairs(self, pairs):
                return np.full(len(pairs), 0.3)

        panel = AnnotatorPanel(world)
        report = evaluate_mined_relations(Constant(), split, panel)
        # A constant scorer cannot separate, so calibration degenerates to
        # accepting the whole pool.
        assert report.num_accepted == report.num_pool
