"""Behavior-log generation and weekly drift."""

import numpy as np
import pytest

from repro.datasets import BehaviorConfig, BehaviorLogGenerator, WeeklyDriftProcess
from repro.errors import ConfigError


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            BehaviorConfig(daily_activity=0.0).validate()
        with pytest.raises(ConfigError):
            BehaviorConfig(num_days=0).validate()
        with pytest.raises(ConfigError):
            BehaviorConfig(max_mentions_per_event=0).validate()


class TestEvents:
    def test_days_within_range(self, world):
        generator = BehaviorLogGenerator(world, BehaviorConfig(num_days=5, seed=1))
        events = generator.generate(start_day=10, num_days=5)
        days = {e.day for e in events}
        assert days <= set(range(10, 15))

    def test_mentions_reference_actual_tokens(self, events, world):
        for event in events[:200]:
            tokens = event.tokens
            for mention in event.mentions:
                surface = " ".join(tokens[mention.start : mention.end + 1])
                assert surface == world.entities[mention.entity_id].name.lower()

    def test_channels_valid(self, events):
        assert {e.channel for e in events} <= {"search", "visit"}

    def test_every_event_has_a_mention(self, events):
        assert all(len(e.mentions) >= 1 for e in events)

    def test_mention_count_bounded(self, world):
        config = BehaviorConfig(num_days=3, max_mentions_per_event=2, seed=2)
        events = BehaviorLogGenerator(world, config).generate()
        assert all(len(e.mentions) <= 2 for e in events)

    def test_deterministic_given_seed(self, world):
        a = BehaviorLogGenerator(world, BehaviorConfig(num_days=3, seed=4)).generate()
        b = BehaviorLogGenerator(world, BehaviorConfig(num_days=3, seed=4)).generate()
        assert [e.text for e in a[:20]] == [e.text for e in b[:20]]

    def test_users_mention_entities_they_like(self, world, events):
        # Users should interact with their top topics far more than chance.
        affinity = world.user_entity_affinity()
        scores = [affinity[e.user_id, m.entity_id] for e in events[:300] for m in e.mentions]
        assert np.mean(scores) > affinity.mean() * 1.5

    def test_events_topically_coherent(self, world, events):
        # Two mentions in the same event usually share a primary topic.
        agree = []
        for event in events:
            topics = [world.entities[m.entity_id].primary_topic for m in event.mentions]
            if len(topics) >= 2:
                agree.append(len(set(topics)) == 1)
        assert np.mean(agree) > 0.6


class TestDrift:
    def test_weights_are_distribution(self, world):
        drift = WeeklyDriftProcess(world.num_topics, 0.3, np.random.default_rng(0))
        for _ in range(5):
            w = drift.step()
            assert w.shape == (world.num_topics,)
            assert w.sum() == pytest.approx(1.0)

    def test_zero_scale_is_stationary(self, world):
        drift = WeeklyDriftProcess(world.num_topics, 0.0, np.random.default_rng(0))
        w1 = drift.step()
        w2 = drift.step()
        np.testing.assert_allclose(w1, w2)

    def test_drift_changes_entity_mix(self, world):
        generator = BehaviorLogGenerator(world, BehaviorConfig(seed=3, drift_scale=1.5))
        week0 = generator.generate_week(0, rng=0)
        for _ in range(5):
            generator.drift.step()
        week9 = generator.generate_week(9, rng=0)

        def topic_histogram(events):
            counts = np.zeros(world.num_topics)
            for e in events:
                for m in e.mentions:
                    counts[world.entities[m.entity_id].primary_topic] += 1
            return counts / counts.sum()

        h0 = topic_histogram(week0)
        h9 = topic_histogram(week9)
        assert np.abs(h0 - h9).sum() > 0.1  # distribution moved

    def test_generate_week_day_offsets(self, world):
        generator = BehaviorLogGenerator(world, BehaviorConfig(seed=3))
        week2 = generator.generate_week(2, rng=0)
        days = {e.day for e in week2}
        assert days <= set(range(14, 21))
