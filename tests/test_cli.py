"""Command-line interface."""

import json

import pytest

from repro.cli import main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestWorldCommand:
    def test_exports_files(self, tmp_path, capsys):
        events_out = tmp_path / "events.jsonl"
        dict_out = tmp_path / "dict.tsv"
        code = main(
            [
                "world",
                "--entities", "30",
                "--users", "20",
                "--days", "3",
                "--events-out", str(events_out),
                "--dict-out", str(dict_out),
            ]
        )
        assert code == 0
        assert events_out.exists() and dict_out.exists()
        out = capsys.readouterr().out
        assert "events" in out and "entity dict" in out

        # The exported files round-trip through the loaders.
        from repro.datasets import load_entity_dict, load_events

        assert len(load_events(events_out)) > 0
        assert len(load_entity_dict(dict_out)) == 30


class TestGraphStats:
    def test_prints_summaries(self, capsys):
        code = main(["graph-stats", "--entities", "60", "--users", "40", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "candidate graph:" in out
        assert "ranked graph:" in out
        assert "ground truth:" in out


class TestDemo:
    def test_end_to_end(self, capsys):
        code = main(["demo", "--entities", "80", "--users", "50", "--k", "5", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "offline refresh" in out
        assert "exported 5 users" in out


class TestMetricsCommand:
    def test_prints_exposition_and_stage_breakdown(self, capsys):
        code = main(
            ["metrics", "--entities", "60", "--users", "40",
             "--seed", "3", "--requests", "6", "--k", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "weekly refresh stage breakdown:" in out
        assert "alpc_ranking" in out
        assert "=== /metrics ===" in out
        # Non-zero request counters, latency histograms, cache counters,
        # version gauges and stage timings all appear in the exposition.
        assert 'api_requests_total{endpoint="expand",status="ok"} 6' in out
        assert "api_request_seconds_bucket" in out
        assert "serving_expansion_cache_misses_total" in out
        assert 'serving_active_version{kind="graph"} 1' in out
        assert 'pipeline_stage_seconds_count{stage="ner_extraction"} 1' in out

    def test_json_flag_prints_pure_machine_readable_snapshot(self, capsys):
        code = main(
            ["metrics", "--entities", "60", "--users", "40",
             "--seed", "3", "--requests", "4", "--k", "5", "--json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        snapshot = json.loads(out)  # the whole stdout is one JSON document
        assert snapshot["enabled"] is True
        requests = snapshot["counters"]["api_requests_total"]
        assert any(s["labels"].get("endpoint") == "expand" for s in requests)
        # Satellite behaviour: empty histograms carry no percentile keys.
        for series_list in snapshot["histograms"].values():
            for series in series_list:
                if series["count"] == 0:
                    assert "p50" not in series


class TestServeCommand:
    def test_port_flag_binds_endpoint_and_prints_routes(self, capsys):
        code = main(
            ["serve", "--entities", "60", "--users", "40",
             "--seed", "3", "--requests", "4", "--k", "5", "--port", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry endpoint: http://127.0.0.1:" in out
        for route in ("/metrics", "/health", "/drift", "/alerts", "/traces"):
            assert f"{route}\n" in out
        # Drift verdicts from the refresh swaps are summarised too.
        assert "runtime health:" in out
        assert "=== /metrics ===" in out


class TestRefreshCommand:
    def test_kill_resume_matches_clean_digest(self, tmp_path, capsys):
        base = ["refresh", "--entities", "60", "--users", "40", "--seed", "3"]

        # Killed right after the candidates stage checkpoints: exit 3.
        code = main(
            base + ["--artifact-root", str(tmp_path / "a"),
                    "--kill-after", "candidates"]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "refresh interrupted" in captured.err
        assert "cooccurrence, candidates" in captured.err
        assert "--resume" in captured.err

        # A second process resumes the surviving checkpoints: exit 0.
        code = main(base + ["--artifact-root", str(tmp_path / "a"), "--resume"])
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed stages: cooccurrence, candidates" in out
        resumed_digest = out.split("artifact digest: ")[1].split()[0]

        # An uninterrupted run in a fresh root lands on the same bytes.
        code = main(base + ["--artifact-root", str(tmp_path / "b")])
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed stages" not in out
        clean_digest = out.split("artifact digest: ")[1].split()[0]
        assert resumed_digest == clean_digest


class TestRollbackCommand:
    def test_rolls_back_to_previous_generation(self, capsys):
        code = main(
            ["rollback", "--entities", "60", "--users", "40",
             "--seed", "3", "--refreshes", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rolled back graph: v2 -> v1" in out

    def test_nothing_to_roll_back_exits_5(self, capsys):
        code = main(
            ["rollback", "--entities", "60", "--users", "40",
             "--seed", "3", "--refreshes", "1"]
        )
        assert code == 5
        assert "nothing to roll back" in capsys.readouterr().err

    def test_bad_refreshes_is_usage_error(self, capsys):
        assert main(["rollback", "--refreshes", "0"]) == 2


class TestServeDegradedStatus:
    def test_healthy_status_line(self, capsys):
        code = main(
            ["serve", "--entities", "60", "--users", "40",
             "--seed", "3", "--requests", "2", "--k", "5"]
        )
        assert code == 0
        assert "status: healthy (all circuit breakers closed)" in capsys.readouterr().out
