"""Command-line interface."""

import pytest

from repro.cli import main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestWorldCommand:
    def test_exports_files(self, tmp_path, capsys):
        events_out = tmp_path / "events.jsonl"
        dict_out = tmp_path / "dict.tsv"
        code = main(
            [
                "world",
                "--entities", "30",
                "--users", "20",
                "--days", "3",
                "--events-out", str(events_out),
                "--dict-out", str(dict_out),
            ]
        )
        assert code == 0
        assert events_out.exists() and dict_out.exists()
        out = capsys.readouterr().out
        assert "events" in out and "entity dict" in out

        # The exported files round-trip through the loaders.
        from repro.datasets import load_entity_dict, load_events

        assert len(load_events(events_out)) > 0
        assert len(load_entity_dict(dict_out)) == 30


class TestGraphStats:
    def test_prints_summaries(self, capsys):
        code = main(["graph-stats", "--entities", "60", "--users", "40", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "candidate graph:" in out
        assert "ranked graph:" in out
        assert "ground truth:" in out


class TestDemo:
    def test_end_to_end(self, capsys):
        code = main(["demo", "--entities", "80", "--users", "50", "--k", "5", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "offline refresh" in out
        assert "exported 5 users" in out


class TestMetricsCommand:
    def test_prints_exposition_and_stage_breakdown(self, capsys):
        code = main(
            ["metrics", "--entities", "60", "--users", "40",
             "--seed", "3", "--requests", "6", "--k", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "weekly refresh stage breakdown:" in out
        assert "alpc_ranking" in out
        assert "=== /metrics ===" in out
        # Non-zero request counters, latency histograms, cache counters,
        # version gauges and stage timings all appear in the exposition.
        assert 'api_requests_total{endpoint="expand",status="ok"} 6' in out
        assert "api_request_seconds_bucket" in out
        assert "serving_expansion_cache_misses_total" in out
        assert 'serving_active_version{kind="graph"} 1' in out
        assert 'pipeline_stage_seconds_count{stage="ner_extraction"} 1' in out
