"""Command-line interface."""

import json

import pytest

from repro.cli import main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestWorldCommand:
    def test_exports_files(self, tmp_path, capsys):
        events_out = tmp_path / "events.jsonl"
        dict_out = tmp_path / "dict.tsv"
        code = main(
            [
                "world",
                "--entities", "30",
                "--users", "20",
                "--days", "3",
                "--events-out", str(events_out),
                "--dict-out", str(dict_out),
            ]
        )
        assert code == 0
        assert events_out.exists() and dict_out.exists()
        out = capsys.readouterr().out
        assert "events" in out and "entity dict" in out

        # The exported files round-trip through the loaders.
        from repro.datasets import load_entity_dict, load_events

        assert len(load_events(events_out)) > 0
        assert len(load_entity_dict(dict_out)) == 30


class TestGraphStats:
    def test_prints_summaries(self, capsys):
        code = main(["graph-stats", "--entities", "60", "--users", "40", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "candidate graph:" in out
        assert "ranked graph:" in out
        assert "ground truth:" in out


class TestDemo:
    def test_end_to_end(self, capsys):
        code = main(["demo", "--entities", "80", "--users", "50", "--k", "5", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "offline refresh" in out
        assert "exported 5 users" in out


class TestMetricsCommand:
    def test_prints_exposition_and_stage_breakdown(self, capsys):
        code = main(
            ["metrics", "--entities", "60", "--users", "40",
             "--seed", "3", "--requests", "6", "--k", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "weekly refresh stage breakdown:" in out
        assert "alpc_ranking" in out
        assert "=== /metrics ===" in out
        # Non-zero request counters, latency histograms, cache counters,
        # version gauges and stage timings all appear in the exposition.
        assert 'api_requests_total{endpoint="expand",status="ok"} 6' in out
        assert "api_request_seconds_bucket" in out
        assert "serving_expansion_cache_misses_total" in out
        assert 'serving_active_version{kind="graph"} 1' in out
        assert 'pipeline_stage_seconds_count{stage="ner_extraction"} 1' in out

    def test_json_flag_prints_pure_machine_readable_snapshot(self, capsys):
        code = main(
            ["metrics", "--entities", "60", "--users", "40",
             "--seed", "3", "--requests", "4", "--k", "5", "--json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        snapshot = json.loads(out)  # the whole stdout is one JSON document
        assert snapshot["enabled"] is True
        requests = snapshot["counters"]["api_requests_total"]
        assert any(s["labels"].get("endpoint") == "expand" for s in requests)
        # Satellite behaviour: empty histograms carry no percentile keys.
        for series_list in snapshot["histograms"].values():
            for series in series_list:
                if series["count"] == 0:
                    assert "p50" not in series


class TestServeCommand:
    def test_port_flag_binds_endpoint_and_prints_routes(self, capsys):
        code = main(
            ["serve", "--entities", "60", "--users", "40",
             "--seed", "3", "--requests", "4", "--k", "5", "--port", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry endpoint: http://127.0.0.1:" in out
        for route in ("/metrics", "/health", "/drift", "/alerts", "/traces"):
            assert f"{route}\n" in out
        # Drift verdicts from the refresh swaps are summarised too.
        assert "runtime health:" in out
        assert "=== /metrics ===" in out
