"""RetryPolicy: backoff shape, seeded jitter, retryable classification."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, CorruptArtifactError, StorageError
from repro.obs import ManualClock
from repro.resilience import InjectedFault, RetryPolicy


def test_succeeds_first_try_without_sleeping():
    clock = ManualClock()
    policy = RetryPolicy(clock=clock)
    assert policy.call(lambda: 42) == 42
    assert clock.perf() == 0.0


def test_retries_transient_failures_then_succeeds():
    clock = ManualClock()
    policy = RetryPolicy(max_attempts=4, clock=clock)
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise StorageError("disk hiccup")
        return "ok"

    assert policy.call(flaky) == "ok"
    assert len(attempts) == 3
    assert clock.perf() > 0.0  # two backoffs elapsed on the manual clock


def test_exhausted_policy_reraises_final_error_unchanged():
    policy = RetryPolicy(max_attempts=3, clock=ManualClock())
    boom = StorageError("still broken")

    def always_fails():
        raise boom

    with pytest.raises(StorageError) as excinfo:
        policy.call(always_fails)
    assert excinfo.value is boom


def test_non_retryable_surfaces_immediately():
    policy = RetryPolicy(max_attempts=5, clock=ManualClock())
    attempts = []

    def corrupt():
        attempts.append(1)
        raise CorruptArtifactError("bit rot")

    with pytest.raises(CorruptArtifactError):
        policy.call(corrupt)
    assert len(attempts) == 1  # CorruptArtifactError is StorageError but excluded


def test_unrelated_exceptions_are_never_retried():
    policy = RetryPolicy(max_attempts=5, clock=ManualClock())
    attempts = []

    def misuse():
        attempts.append(1)
        raise ConfigError("caller bug")

    with pytest.raises(ConfigError):
        policy.call(misuse)
    assert len(attempts) == 1


def test_injected_fault_is_retryable_by_default():
    policy = RetryPolicy(clock=ManualClock())
    assert policy.is_retryable(InjectedFault("x"))
    assert not policy.is_retryable(CorruptArtifactError("x"))


def test_delay_sequence_is_capped_exponential():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3,
        jitter=0.0, clock=ManualClock(),
    )
    assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.3, 0.3])


def test_jitter_is_seeded_and_reproducible():
    a = RetryPolicy(max_attempts=6, seed=11, clock=ManualClock())
    b = RetryPolicy(max_attempts=6, seed=11, clock=ManualClock())
    assert list(a.delays()) == list(b.delays())

    c = RetryPolicy(max_attempts=6, seed=12, clock=ManualClock())
    assert list(a.delays()) != list(c.delays())  # fresh draws differ by seed

    a.reset()
    b.reset()
    assert list(a.delays()) == list(b.delays())


def test_jitter_stays_within_band():
    policy = RetryPolicy(
        max_attempts=50, base_delay=1.0, multiplier=1.0, max_delay=1.0,
        jitter=0.25, clock=ManualClock(),
    )
    for delay in policy.delays():
        assert 0.75 <= delay <= 1.25


def test_on_retry_hook_sees_seam_attempt_and_error():
    clock = ManualClock()
    seen = []
    policy = RetryPolicy(
        max_attempts=3, clock=clock,
        on_retry=lambda seam, attempt, error: seen.append((seam, attempt, str(error))),
    )
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise StorageError(f"fail {len(calls)}")
        return "ok"

    policy.call(flaky, seam="registry.write")
    assert seen == [("registry.write", 1, "fail 1"), ("registry.write", 2, "fail 2")]


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)


def test_backoff_sleeps_exact_manual_time():
    clock = ManualClock()
    policy = RetryPolicy(
        max_attempts=3, base_delay=0.5, multiplier=2.0, jitter=0.0, clock=clock
    )
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise StorageError("x")
        return "ok"

    policy.call(flaky)
    assert clock.perf() == pytest.approx(0.5 + 1.0)
