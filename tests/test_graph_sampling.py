"""Alias sampling, random walks, negative pair sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, GraphError
from repro.graph import (
    AliasSampler,
    EntityGraph,
    node2vec_walks,
    random_walks,
    sample_corrupted_targets,
    sample_negative_pairs,
)


@pytest.fixture()
def barbell():
    # Two triangles joined by a bridge 2-3.
    return EntityGraph.from_edge_list(
        6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    )


class TestAliasSampler:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AliasSampler(np.array([]))
        with pytest.raises(ConfigError):
            AliasSampler(np.array([-1.0, 2.0]))
        with pytest.raises(ConfigError):
            AliasSampler(np.array([0.0, 0.0]))

    def test_distribution_matches_probabilities(self):
        probs = np.array([0.5, 0.3, 0.15, 0.05])
        sampler = AliasSampler(probs)
        rng = np.random.default_rng(0)
        draws = sampler.sample(rng, 60_000)
        freq = np.bincount(draws, minlength=4) / 60_000
        np.testing.assert_allclose(freq, probs, atol=0.01)

    def test_degenerate_distribution(self):
        sampler = AliasSampler(np.array([0.0, 1.0, 0.0]))
        rng = np.random.default_rng(0)
        assert set(sampler.sample(rng, 100).tolist()) == {1}

    @given(st.integers(1, 20), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_samples_in_range(self, n, seed):
        rng = np.random.default_rng(seed)
        sampler = AliasSampler(rng.random(n) + 0.01)
        draws = sampler.sample(np.random.default_rng(seed + 1), 50)
        assert draws.min() >= 0 and draws.max() < n


class TestRandomWalks:
    def test_walks_follow_edges(self, barbell):
        walks = random_walks(barbell, num_walks=2, walk_length=5, rng=0)
        for walk in walks:
            for a, b in zip(walk, walk[1:]):
                assert barbell.has_edge(a, b)

    def test_walk_counts(self, barbell):
        walks = random_walks(barbell, num_walks=3, walk_length=4, rng=0)
        assert len(walks) == 3 * barbell.num_nodes

    def test_isolated_node_stops(self):
        g = EntityGraph.from_edge_list(3, [(0, 1)])
        walks = random_walks(g, num_walks=1, walk_length=5, rng=0)
        isolated = [w for w in walks if w[0] == 2]
        assert all(len(w) == 1 for w in isolated)

    def test_weighted_walks_prefer_heavy_edges(self):
        g = EntityGraph.from_edge_list(3, [(0, 1), (0, 2)], weights=[0.99, 0.01])
        walks = random_walks(g, num_walks=200, walk_length=2, rng=0, weighted=True)
        second = [w[1] for w in walks if w[0] == 0 and len(w) > 1]
        assert np.mean([s == 1 for s in second]) > 0.9


class TestNode2Vec:
    def test_validation(self, barbell):
        with pytest.raises(ConfigError):
            node2vec_walks(barbell, 1, 3, p=0)

    def test_walks_follow_edges(self, barbell):
        walks = node2vec_walks(barbell, num_walks=1, walk_length=5, p=0.5, q=2.0, rng=0)
        for walk in walks:
            for a, b in zip(walk, walk[1:]):
                assert barbell.has_edge(a, b)

    def test_low_p_increases_backtracking(self, barbell):
        def backtrack_rate(p):
            walks = node2vec_walks(barbell, num_walks=30, walk_length=6, p=p, q=1.0, rng=0)
            back = total = 0
            for walk in walks:
                for i in range(2, len(walk)):
                    total += 1
                    back += walk[i] == walk[i - 2]
            return back / total

        assert backtrack_rate(0.05) > backtrack_rate(20.0)


class TestNegativeSampling:
    def test_negatives_are_non_edges(self, barbell):
        negatives = sample_negative_pairs(barbell, 5, rng=0)
        for u, v in negatives:
            assert not barbell.has_edge(int(u), int(v))
            assert u < v

    def test_negatives_unique(self, barbell):
        negatives = sample_negative_pairs(barbell, 6, rng=0)
        assert len({tuple(p) for p in negatives}) == 6

    def test_forbidden_pairs_avoided(self, barbell):
        forbidden = {(0, 4), (0, 5)}
        negatives = sample_negative_pairs(barbell, 4, rng=0, forbidden=forbidden)
        assert not ({tuple(p) for p in negatives} & forbidden)

    def test_too_dense_raises(self):
        g = EntityGraph.from_edge_list(3, [(0, 1), (0, 2), (1, 2)])
        with pytest.raises(GraphError):
            sample_negative_pairs(g, 5, rng=0)

    def test_single_node_graph_raises(self):
        g = EntityGraph.from_edge_list(1, [])
        with pytest.raises(GraphError):
            sample_negative_pairs(g, 1, rng=0)

    def test_corrupted_targets_shape(self):
        out = sample_corrupted_targets(np.array([1, 2, 3]), 10, 4, rng=0)
        assert out.shape == (3, 4)
        assert out.min() >= 0 and out.max() < 10
