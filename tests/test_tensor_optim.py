"""Optimisers and schedulers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.tensor import SGD, Adam, CosineLR, StepLR, Tensor, global_grad_norm


def quadratic_loss(x: Tensor) -> Tensor:
    return ((x - 3.0) * (x - 3.0)).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        x = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([x], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(x).backward()
            opt.step()
        np.testing.assert_allclose(x.data, np.full(4, 3.0), atol=1e-4)

    def test_momentum_accelerates(self):
        def final_loss(momentum):
            x = Tensor(np.zeros(2), requires_grad=True)
            opt = SGD([x], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(x).backward()
                opt.step()
            return float(quadratic_loss(x).data)

        assert final_loss(0.9) < final_loss(0.0)

    def test_weight_decay_shrinks(self):
        x = Tensor(np.full(3, 10.0), requires_grad=True)
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (x.sum() * 0.0).backward()
        opt.step()
        assert np.all(np.abs(x.data) < 10.0)

    def test_rejects_bad_lr_and_empty_params(self):
        x = Tensor([1.0], requires_grad=True)
        with pytest.raises(ConfigError):
            SGD([x], lr=-1)
        with pytest.raises(ConfigError):
            SGD([Tensor([1.0])])  # no trainable params

    def test_skips_params_without_grad(self):
        x = Tensor([1.0], requires_grad=True)
        y = Tensor([2.0], requires_grad=True)
        opt = SGD([x, y], lr=0.5)
        (x * 2).sum().backward()
        opt.step()
        np.testing.assert_allclose(y.data, [2.0])
        np.testing.assert_allclose(x.data, [0.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        x = Tensor(np.full(4, -5.0), requires_grad=True)
        opt = Adam([x], lr=0.2)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(x).backward()
            opt.step()
        np.testing.assert_allclose(x.data, np.full(4, 3.0), atol=1e-3)

    def test_bias_correction_first_step(self):
        x = Tensor([0.0], requires_grad=True)
        opt = Adam([x], lr=0.1)
        opt.zero_grad()
        (x * 4.0).sum().backward()
        opt.step()
        # With bias correction the first step has magnitude ~lr.
        assert abs(abs(float(x.data[0])) - 0.1) < 1e-6

    def test_weight_decay(self):
        x = Tensor([5.0], requires_grad=True)
        opt = Adam([x], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (x * 0.0).sum().backward()
        opt.step()
        assert float(x.data[0]) < 5.0


class TestSchedulersAndClip:
    def test_step_lr(self):
        x = Tensor([0.0], requires_grad=True)
        opt = SGD([x], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        for _ in range(4):
            sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_cosine_lr_reaches_min(self):
        x = Tensor([0.0], requires_grad=True)
        opt = SGD([x], lr=1.0)
        sched = CosineLR(opt, total_steps=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)
        sched.step()  # clamps past the end
        assert opt.lr == pytest.approx(0.1)

    def test_scheduler_validation(self):
        x = Tensor([0.0], requires_grad=True)
        opt = SGD([x], lr=1.0)
        with pytest.raises(ConfigError):
            StepLR(opt, step_size=0)
        with pytest.raises(ConfigError):
            CosineLR(opt, total_steps=0)

    def test_clip_grad_norm_scales(self):
        x = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        opt = SGD([x], lr=1.0)
        x.grad = np.array([3.0, 4.0])  # norm 5
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_noop_below_max(self):
        x = Tensor([1.0], requires_grad=True)
        opt = SGD([x], lr=1.0)
        x.grad = np.array([0.5])
        opt.clip_grad_norm(10.0)
        np.testing.assert_allclose(x.grad, [0.5])

    def test_global_grad_norm(self):
        a = Tensor([3.0], requires_grad=True)
        b = Tensor([4.0], requires_grad=True)
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        assert global_grad_norm([a, b]) == pytest.approx(5.0)
        assert global_grad_norm([Tensor([0.0], requires_grad=True)]) == 0.0
