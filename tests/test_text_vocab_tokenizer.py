"""Vocab and tokenizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VocabularyError
from repro.text import Vocab, WhitespaceTokenizer, encode_batch
from repro.text.vocab import CLS_TOKEN, MASK_TOKEN, PAD_TOKEN, UNK_TOKEN


class TestVocab:
    def test_special_tokens_have_fixed_ids(self):
        v = Vocab(["alpha", "beta"])
        assert v.pad_id == 0 and v.unk_id == 1 and v.mask_id == 2 and v.cls_id == 3
        assert v.decode([0, 1, 2, 3]) == [PAD_TOKEN, UNK_TOKEN, MASK_TOKEN, CLS_TOKEN]

    def test_encode_decode_round_trip(self):
        v = Vocab(["alpha", "beta", "gamma"])
        tokens = ["gamma", "alpha"]
        assert v.decode(v.encode(tokens)) == tokens

    def test_unknown_maps_to_unk(self):
        v = Vocab(["alpha"])
        assert v.encode(["nope"]) == [v.unk_id]

    def test_duplicates_ignored(self):
        v = Vocab(["a", "a", "b"])
        assert len(v) == 4 + 2

    def test_build_min_count(self):
        corpus = [["a", "a", "b"], ["a", "c"]]
        v = Vocab.build(corpus, min_count=2)
        assert "a" in v
        assert "b" not in v and "c" not in v

    def test_token_id_raises_for_unknown(self):
        with pytest.raises(VocabularyError):
            Vocab([]).token_id("ghost")

    def test_decode_out_of_range_raises(self):
        with pytest.raises(VocabularyError):
            Vocab([]).decode([99])

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=4), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, tokens):
        v = Vocab(tokens)
        assert v.decode(v.encode(tokens)) == tokens


class TestTokenizer:
    def test_lowercases_and_strips_punctuation(self):
        t = WhitespaceTokenizer()
        assert t.tokenize("Hello, NBA! 2024") == ["hello", "nba", "2024"]

    def test_empty_string(self):
        assert WhitespaceTokenizer().tokenize("  ") == []


class TestEncodeBatch:
    def test_padding_and_mask(self):
        v = Vocab(["a", "b", "c"])
        ids, mask = encode_batch([["a"], ["b", "c"]], v, max_len=3)
        assert ids.shape == (2, 3)
        assert mask.tolist() == [[True, False, False], [True, True, False]]
        assert ids[0, 1] == v.pad_id

    def test_truncation(self):
        v = Vocab(["a"])
        ids, mask = encode_batch([["a"] * 10], v, max_len=4)
        assert mask.sum() == 4

    def test_cls_prepended(self):
        v = Vocab(["a"])
        ids, _ = encode_batch([["a"]], v, max_len=4, add_cls=True)
        assert ids[0, 0] == v.cls_id
        assert ids[0, 1] == v.token_id("a")
