"""IVF index, checkpoints, k-hop subgraphs, serving API facade."""

import numpy as np
import pytest

from repro.embeddings import BruteForceKNN, IVFIndex
from repro.errors import ConfigError, StorageError
from repro.graph import EntityGraph, k_hop_subgraph
from repro.nn import MLP, load_checkpoint, save_checkpoint
from repro.online.api import EGLService, ExpandRequest, TargetRequest
from repro.tensor import Tensor


class TestIVFIndex:
    @pytest.fixture()
    def clustered(self, rng):
        centers = rng.normal(size=(4, 12)) * 4
        return np.concatenate([c + rng.normal(size=(40, 12)) * 0.3 for c in centers])

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            IVFIndex(np.zeros(5))
        with pytest.raises(ConfigError):
            IVFIndex(rng.normal(size=(10, 3)), num_centroids=0)

    def test_recall_on_clustered_data(self, clustered):
        exact = BruteForceKNN(clustered)
        ivf = IVFIndex(clustered, num_centroids=8, num_probe=3, rng=0)
        recall = ivf.recall_against_exact(exact, k=5, sample=np.arange(0, 160, 10))
        assert recall > 0.8

    def test_more_probes_more_recall(self, clustered):
        exact = BruteForceKNN(clustered)
        sample = np.arange(0, 160, 10)
        narrow = IVFIndex(clustered, num_centroids=8, num_probe=1, rng=0)
        wide = IVFIndex(clustered, num_centroids=8, num_probe=8, rng=0)
        assert wide.recall_against_exact(exact, 5, sample) >= narrow.recall_against_exact(
            exact, 5, sample
        )
        # Probing every list is exact.
        assert wide.recall_against_exact(exact, 5, sample) == pytest.approx(1.0)

    def test_query_sorted_and_excludes(self, clustered):
        ivf = IVFIndex(clustered, rng=0)
        ids, scores = ivf.query(clustered[3], k=10, exclude=3)
        assert 3 not in ids
        assert (np.diff(scores) <= 1e-12).all()

    def test_centroids_clamped_to_population(self, rng):
        small = rng.normal(size=(5, 4))
        ivf = IVFIndex(small, num_centroids=50, num_probe=50, rng=0)
        assert ivf.num_centroids == 5


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        a = MLP([4, 8, 2], rng=0)
        b = MLP([4, 8, 2], rng=1)
        path = tmp_path / "model.npz"
        n = save_checkpoint(a, path)
        assert n == len(a.parameters())
        load_checkpoint(b, path)
        x = Tensor(np.ones((3, 4)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_checkpoint(MLP([2, 2], rng=0), tmp_path / "nope.npz")

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, foo=np.ones(3))
        with pytest.raises(StorageError):
            load_checkpoint(MLP([2, 2], rng=0), path)

    def test_architecture_mismatch_rejected(self, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(MLP([4, 8, 2], rng=0), path)
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            load_checkpoint(MLP([4, 4, 2], rng=0), path)


class TestKHopSubgraph:
    def test_induced_subgraph_matches_expansion(self):
        graph = EntityGraph.from_edge_list(
            6, [(0, 1), (1, 2), (2, 3), (4, 5)], weights=[0.9, 0.8, 0.7, 0.6]
        )
        sub, expansion, node_ids = k_hop_subgraph(graph, [0], depth=2)
        assert set(node_ids.tolist()) == set(expansion.scores)
        assert sub.num_nodes == 3  # 0, 1, 2
        # Edges inside the expansion survive, relabelled.
        local = {int(n): i for i, n in enumerate(node_ids)}
        assert sub.has_edge(local[0], local[1])
        assert sub.has_edge(local[1], local[2])
        assert sub.num_edges == 2


class TestServiceAPI:
    @pytest.fixture(scope="class")
    def service(self, world):
        from repro.datasets import BehaviorConfig, BehaviorLogGenerator
        from repro.embeddings import SkipGramConfig
        from repro.embeddings.mlm import MLMConfig
        from repro.embeddings.semantic import SemanticEncoderConfig
        from repro.online import EGLSystem
        from repro.trmp import ALPCConfig, TRMPConfig

        config = TRMPConfig(
            skipgram=SkipGramConfig(epochs=6, seed=2),
            semantic=SemanticEncoderConfig(mlm=MLMConfig(epochs=3, seed=3)),
            alpc=ALPCConfig(epochs=10, seed=1),
        )
        system = EGLSystem(world, config)
        events = BehaviorLogGenerator(world, BehaviorConfig(seed=5)).generate()
        system.weekly_refresh(events)
        system.daily_preference_refresh(events)
        return EGLService(system)

    def test_health(self, service):
        response = service.health()
        assert response.ok
        assert response.payload["weekly_runs"] == 1
        assert response.payload["preferences_ready"]

    def test_expand_payload_serialisable(self, service, world):
        phrase = world.entities[0].name
        response = service.expand(ExpandRequest(phrases=[phrase], depth=2))
        assert response.ok
        import json

        json.dumps(response.to_dict())  # fully serialisable
        assert response.payload["seeds"] == [phrase.lower()]
        assert all("path" in e for e in response.payload["entities"])

    def test_expand_error_envelope(self, service):
        response = service.expand(ExpandRequest(phrases=[""], depth=1))
        # Blank phrase resolves nothing OR hits the semantic fallback —
        # either a clean error envelope or a valid payload, never a raise.
        assert isinstance(response.ok, bool)
        if not response.ok:
            assert response.error

    def test_target_flow(self, service):
        expand = service.expand(ExpandRequest(phrases=[service.system.world.entities[1].name]))
        ids = [e["entity_id"] for e in expand.payload["entities"]][:5]
        response = service.target(TargetRequest(entity_ids=ids, k=7))
        assert response.ok
        assert len(response.payload["users"]) == 7

    def test_target_validation_error(self, service):
        response = service.target(TargetRequest(entity_ids=[], k=5))
        assert not response.ok
        assert "entity" in response.error

    def test_feedback_recorded(self, service):
        response = service.record_feedback(0, [1, 2])
        assert response.ok
        assert response.payload["recorded"] == 2
