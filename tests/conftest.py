"""Shared fixtures.

Expensive artefacts (world, behavior logs, candidate graph, a trained ALPC)
are session-scoped: many test modules read them, none mutate them.
"""

from __future__ import annotations

import os

# Deterministic seeded tests want deterministic BLAS: on multi-core
# runners OpenBLAS would thread large GEMMs, and its parallel summation
# order can make seeded training results machine-dependent. Pin it before
# numpy loads the BLAS; `setdefault` keeps an explicit override working.
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")

import numpy as np
import pytest

from repro.datasets import (
    BehaviorConfig,
    BehaviorLogGenerator,
    World,
    WorldConfig,
    make_link_prediction_split,
)
from repro.embeddings import SemanticEntityEncoder, SemanticEncoderConfig, SkipGramConfig, SkipGramModel
from repro.embeddings.mlm import MLMConfig
from repro.text import EntityDict, EntitySequenceExtractor
from repro.trmp import ALPCConfig, ALPCLinkPredictor, CandidateGenerator


@pytest.fixture(scope="session")
def world() -> World:
    return World(WorldConfig(num_entities=150, num_users=120, seed=42))


@pytest.fixture(scope="session")
def events(world):
    generator = BehaviorLogGenerator(world, BehaviorConfig(num_days=21, seed=5))
    return generator.generate()


@pytest.fixture(scope="session")
def entity_dict(world):
    return EntityDict.from_world(world)


@pytest.fixture(scope="session")
def extractor(entity_dict):
    return EntitySequenceExtractor(entity_dict)


@pytest.fixture(scope="session")
def sequences(extractor, events):
    return extractor.corpus_sequences(events)


@pytest.fixture(scope="session")
def e_cooccurrence(world, sequences):
    model = SkipGramModel(world.num_entities, SkipGramConfig(epochs=10, seed=2))
    return model.fit(sequences).normalized_vectors()


@pytest.fixture(scope="session")
def semantic_encoder(world):
    config = SemanticEncoderConfig(mlm=MLMConfig(epochs=5, seed=3))
    return SemanticEntityEncoder(world, config).pretrain()


@pytest.fixture(scope="session")
def e_semantic(semantic_encoder):
    return semantic_encoder.encode_entities()


@pytest.fixture(scope="session")
def candidate(e_cooccurrence, e_semantic):
    return CandidateGenerator().generate(e_cooccurrence, e_semantic)


@pytest.fixture(scope="session")
def split(candidate):
    return make_link_prediction_split(candidate.graph, rng=11)


@pytest.fixture(scope="session")
def trained_alpc(split, candidate, e_semantic):
    config = ALPCConfig(epochs=30, seed=1)
    return ALPCLinkPredictor(config).fit(split, candidate.node_features, e_semantic)


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
