"""Targeted tests for corners the module-level suites do not reach."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rng as rng_mod
from repro.baselines import EXTRA_BASELINE_NAMES, evaluate_link_predictor, make_baseline
from repro.datasets import World, WorldConfig
from repro.gnn import message_edges
from repro.graph import EntityGraph
from repro.simulation import ConversionModel, make_service
from repro.tensor import Tensor, init


class TestRngHelpers:
    def test_none_gives_default_seeded_stream(self):
        a = rng_mod.ensure_rng(None).random(3)
        b = rng_mod.ensure_rng(None).random(3)
        np.testing.assert_allclose(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert rng_mod.ensure_rng(g) is g

    def test_spawn_independent_children(self):
        parent = np.random.default_rng(0)
        children = rng_mod.spawn(parent, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] and draws[1] != draws[2]


class TestInitializers:
    def test_all_trainable_and_shaped(self, rng):
        for factory in (init.zeros, init.ones):
            t = factory((3, 4))
            assert t.requires_grad and t.shape == (3, 4)
        for factory in (init.normal, init.xavier_uniform, init.xavier_normal, init.kaiming_uniform):
            t = factory((3, 4), rng)
            assert t.requires_grad and t.shape == (3, 4)

    def test_xavier_uniform_bound(self, rng):
        t = init.xavier_uniform((100, 100), rng)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(t.data).max() <= bound + 1e-12

    def test_normal_std(self, rng):
        t = init.normal((200, 200), rng, std=0.05)
        assert abs(t.data.std() - 0.05) < 0.005

    def test_fans_vector(self, rng):
        t = init.xavier_uniform((10,), rng)
        assert t.shape == (10,)


class TestMessageEdges:
    def test_matches_directed_edges(self):
        g = EntityGraph.from_edge_list(4, [(0, 1), (2, 3)])
        src, dst, rel = message_edges(g)
        s2, d2, r2 = g.directed_edges()
        np.testing.assert_array_equal(src, s2)
        np.testing.assert_array_equal(dst, d2)
        np.testing.assert_array_equal(rel, r2)


class TestWorldTypeNoise:
    def test_zero_noise_keeps_types_topical(self):
        world = World(WorldConfig(num_entities=80, num_users=10, seed=1, type_noise=0.0))
        for e in world.entities:
            assert e.type_id in world._topic_types[e.primary_topic]

    def test_full_noise_breaks_type_topic_link(self):
        world = World(WorldConfig(num_entities=200, num_users=10, seed=1, type_noise=1.0))
        topical = np.mean(
            [e.type_id in world._topic_types[e.primary_topic] for e in world.entities]
        )
        assert topical < 0.3  # only chance-level agreement remains


class TestConversionMonotonicity:
    @given(st.floats(2.0, 20.0), st.floats(0.05, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_calibration_holds_across_slopes_and_rates(self, slope, base_rate):
        world = World(WorldConfig(num_entities=60, num_users=80, seed=3))
        service = make_service(world, "svc", topic=0, base_conversion_rate=base_rate, rng=0)
        model = ConversionModel(world, slope=slope)
        probs = model.conversion_probabilities(service)
        assert probs.mean() == pytest.approx(base_rate, abs=0.02)
        # Monotone in affinity.
        affinity = service.user_affinity(world)
        order = np.argsort(affinity)
        assert (np.diff(probs[order]) >= -1e-9).all()


class TestExtraBaselines:
    @pytest.mark.parametrize("name", EXTRA_BASELINE_NAMES)
    def test_extra_gnn_baselines_work(self, name, split, candidate):
        model = make_baseline(name, candidate.node_features.shape[1])
        model.epochs = 20
        model.fit(split, candidate.node_features)
        assert evaluate_link_predictor(model, split).auc > 0.6


class TestTensorEdgeCases:
    def test_scalar_tensor_arithmetic(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x + 1.0
        y.backward()
        np.testing.assert_allclose(x.grad, 4.0)

    def test_chained_reshape_identity(self, rng):
        a = rng.normal(size=(2, 3, 4))
        t = Tensor(a, requires_grad=True)
        out = t.reshape(6, 4).reshape(2, 3, 4)
        (out * out).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * a)

    def test_sum_negative_axis(self, rng):
        a = rng.normal(size=(3, 4))
        t = Tensor(a, requires_grad=True)
        t.sum(axis=-1).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(a))
