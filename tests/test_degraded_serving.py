"""Degraded-mode serving: breaker trips, last-good fallback, recovery,
rollback, deadline shedding, and the API's machine-readable error codes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    NotFittedError,
)
from repro.graph import EntityGraph
from repro.obs import ManualClock, Observability
from repro.online import EGLSystem
from repro.online.api import EGLService, ExpandRequest, TargetRequest, error_code
from repro.online.reasoning import GraphReasoner
from repro.preference.store import PreferenceStore
from repro.resilience import CLOSED, HALF_OPEN, OPEN, Deadline, FaultInjector
from repro.text.sequence_extractor import UserEntitySequence


def build_preferences(world, seed: int) -> PreferenceStore:
    rng = np.random.default_rng(seed)
    embeddings = rng.normal(size=(world.num_entities, 6))
    sequences = {
        u: UserEntitySequence(u, list(rng.integers(0, world.num_entities, size=6)))
        for u in range(30)
    }
    return PreferenceStore(embeddings, head_size=16).build(sequences, world.num_users)


def build_reasoner(world, system) -> GraphReasoner:
    graph = EntityGraph.from_edge_list(
        world.num_entities, [(0, 1), (1, 2), (2, 3)], [0.9, 0.8, 0.7], [0, 0, 0]
    )
    return GraphReasoner(graph, system.pipeline.entity_dict)


@pytest.fixture()
def rig(world):
    """A served system on a ManualClock with a shared fault injector."""
    obs = Observability(clock=ManualClock(start=5_000.0))
    faults = FaultInjector(seed=0, clock=obs.clock)
    system = EGLSystem(world, obs=obs, faults=faults)
    system.runtime.activate_graph(build_reasoner(world, system), 1, tag="week-0")
    system.runtime.activate_preferences(build_preferences(world, seed=1), 1)
    return system, faults, obs.clock


class TestReadBreaker:
    def trip(self, system, faults):
        """Establish a last-good generation, then fail the active one."""
        system.target_users([0, 1], k=5)  # success: v1 becomes last-good
        system.runtime.activate_preferences(build_preferences(system.world, seed=2), 2)
        faults.configure("preferences.read", error_rate=1.0)
        for _ in range(5):  # failure_threshold of the read breaker
            result = system.target_users([0, 1], k=5)
            assert len(result.users) == 5  # served from last-good every time

    def test_trip_serves_last_good_and_reports_degraded(self, rig):
        system, faults, _ = rig
        self.trip(system, faults)
        breaker = system.runtime.read_breaker
        assert breaker.state == OPEN

        calls_before = faults.calls("preferences.read")
        result = system.target_users([0, 1], k=5)
        assert len(result.users) == 5
        # Open means the active generation is not even attempted.
        assert faults.calls("preferences.read") == calls_before

        health = system.runtime.health()
        assert health["degraded"] is True
        assert any("preference_read" in r for r in health["degraded_reasons"])
        assert health["breakers"]["preference_read"]["state"] == OPEN
        metrics = system.obs.metrics
        assert metrics.get_value("serving_degraded") == 1.0
        assert metrics.get_value("serving_degraded_serves_total") >= 6

    def test_expand_keeps_serving_while_reads_are_degraded(self, rig, world):
        system, faults, _ = rig
        self.trip(system, faults)
        view = system.expand([world.entities[0].name], depth=2)
        assert view is not None

    def test_half_open_probe_recloses_under_manual_clock(self, rig):
        system, faults, clock = rig
        self.trip(system, faults)
        faults.clear("preferences.read")  # the dependency healed

        clock.advance(29.0)
        assert system.runtime.read_breaker.state == OPEN
        clock.advance(1.0)  # recovery_timeout of the read breaker
        assert system.runtime.read_breaker.state == HALF_OPEN

        result = system.target_users([0, 1], k=5)  # the trial call
        assert len(result.users) == 5
        assert system.runtime.read_breaker.state == CLOSED
        health = system.runtime.health()
        assert health["degraded"] is False
        assert system.obs.metrics.get_value("serving_degraded") == 0.0
        transitions = system.obs.metrics.get_value(
            "breaker_transitions_total", breaker="preference_read", to="closed"
        )
        assert transitions == 1

    def test_failed_probe_reopens(self, rig):
        system, faults, clock = rig
        self.trip(system, faults)
        clock.advance(30.0)  # half-open, but the dependency is still down
        result = system.target_users([0, 1], k=5)  # probe fails, falls back
        assert len(result.users) == 5
        assert system.runtime.read_breaker.state == OPEN

    def test_open_breaker_without_last_good_sheds(self, rig):
        system, faults, _ = rig
        # No successful scoring call ever happened: no last-good exists.
        faults.configure("preferences.read", error_rate=1.0)
        for _ in range(5):
            with pytest.raises(Exception):
                system.target_users([0], k=3)
        with pytest.raises(CircuitOpenError):
            system.target_users([0], k=3)
        assert (
            system.obs.metrics.get_value(
                "serving_shed_requests_total", endpoint="target", reason="circuit_open"
            )
            == 1
        )


class TestActivationBreaker:
    def test_trips_and_keeps_old_generation_serving(self, rig, world):
        system, faults, _ = rig
        faults.configure("runtime.activate", error_rate=1.0)
        for attempt in range(3):  # activation breaker threshold
            with pytest.raises(Exception):
                system.runtime.activate_graph(
                    build_reasoner(world, system), 2 + attempt
                )
        assert system.runtime.activation_breaker.state == OPEN

        with pytest.raises(CircuitOpenError):
            system.runtime.activate_graph(build_reasoner(world, system), 9)
        # The generation that was serving before the failures still serves.
        assert system.runtime.versions()["graph_version"] == 1
        assert system.expand([world.entities[0].name], depth=1) is not None
        assert system.runtime.health()["degraded"] is True

    def test_recovers_half_open_to_closed(self, rig, world):
        system, faults, clock = rig
        faults.configure("runtime.activate", error_rate=1.0)
        for attempt in range(3):
            with pytest.raises(Exception):
                system.runtime.activate_graph(
                    build_reasoner(world, system), 2 + attempt
                )
        faults.clear("runtime.activate")
        clock.advance(60.0)  # activation breaker recovery_timeout
        system.runtime.activate_graph(build_reasoner(world, system), 9)
        assert system.runtime.activation_breaker.state == CLOSED
        assert system.runtime.versions()["graph_version"] == 9


class TestRollback:
    def test_graph_rollback_is_atomic_and_self_inverse(self, rig, world):
        system, _, _ = rig
        system.runtime.activate_graph(build_reasoner(world, system), 2, tag="week-1")
        assert system.runtime.versions()["graph_version"] == 2

        versions = system.rollback("graph")
        assert versions["graph_version"] == 1
        assert versions["graph_tag"] == "week-0"
        assert system.expand([world.entities[0].name], depth=1) is not None

        versions = system.rollback("graph")  # rolling back twice returns
        assert versions["graph_version"] == 2

    def test_preference_rollback(self, rig):
        system, _, _ = rig
        system.runtime.activate_preferences(build_preferences(system.world, 2), 2)
        assert system.rollback("preferences")["preference_version"] == 1
        result = system.target_users([0, 1], k=3)
        assert len(result.users) == 3

    def test_rollback_without_previous_raises(self, rig):
        system, _, _ = rig
        with pytest.raises(NotFittedError):
            system.rollback("graph")  # only one generation was ever active

    def test_rollback_event_and_counter(self, rig, world):
        system, _, _ = rig
        system.runtime.activate_graph(build_reasoner(world, system), 2)
        system.rollback("graph")
        event = system.runtime.swap_events()[-1]
        assert event["rollback"] is True
        assert (event["old_version"], event["new_version"]) == (2, 1)
        assert (
            system.obs.metrics.get_value("serving_rollbacks_total", kind="graph") == 1
        )

    def test_health_reports_rollback_availability(self, rig, world):
        system, _, _ = rig
        assert system.runtime.health()["rollback_available"] == {
            "graph": False,
            "preferences": False,
        }
        system.runtime.activate_graph(build_reasoner(world, system), 2)
        assert system.runtime.health()["rollback_available"]["graph"] is True


class TestDeadlines:
    def test_expired_deadline_sheds_expand(self, rig, world):
        system, _, clock = rig
        deadline = Deadline.after(0.5, clock=clock)
        clock.advance(0.75)
        with pytest.raises(DeadlineExceededError):
            system.expand([world.entities[0].name], deadline=deadline)
        assert (
            system.obs.metrics.get_value(
                "serving_shed_requests_total", endpoint="expand", reason="deadline"
            )
            == 1
        )

    def test_expired_deadline_sheds_target(self, rig):
        system, _, clock = rig
        deadline = Deadline.after(0.1, clock=clock)
        clock.advance(0.2)
        with pytest.raises(DeadlineExceededError):
            system.target_users([0], k=3, deadline=deadline)

    def test_live_deadline_lets_requests_through(self, rig, world):
        system, _, clock = rig
        deadline = Deadline.after(10.0, clock=clock)
        view, result = system.target_users_for_phrases(
            [world.entities[0].name], depth=1, k=3, deadline=deadline
        )
        assert len(result.users) == 3


class TestApiErrorCodes:
    def test_validation_maps_to_invalid_argument(self, rig, world):
        service = EGLService(rig[0])
        response = service.expand(
            ExpandRequest(phrases=[world.entities[0].name], depth=-1)
        )
        assert not response.ok
        assert response.code == "invalid_argument"
        assert response.to_dict()["code"] == "invalid_argument"

    def test_bad_timeout_is_invalid_argument(self, rig):
        service = EGLService(rig[0])
        response = service.target(TargetRequest(entity_ids=[0], timeout_ms=-5))
        assert response.code == "invalid_argument"

    def test_not_ready_before_artifacts(self, world):
        service = EGLService(EGLSystem(world))
        response = service.target(TargetRequest(entity_ids=[0]))
        assert not response.ok
        assert response.code == "not_ready"

    def test_deadline_exceeded_code(self, rig, world, monkeypatch):
        system, _, clock = rig
        service = EGLService(system)
        original = system.expand

        def slow_expand(*args, **kwargs):
            clock.advance(1.0)  # the work outlives the budget
            return original(*args, **kwargs)

        monkeypatch.setattr(system, "expand", slow_expand)
        response = service.expand(
            ExpandRequest(phrases=[world.entities[0].name], timeout_ms=500)
        )
        assert not response.ok
        assert response.code == "deadline_exceeded"

    def test_storage_error_then_circuit_open_codes(self, rig):
        system, faults, _ = rig
        service = EGLService(system)
        faults.configure("preferences.read", error_rate=1.0)
        codes = [
            service.target(TargetRequest(entity_ids=[0], k=3)).code for _ in range(6)
        ]
        assert codes[:5] == ["storage_error"] * 5  # no last-good to fall back to
        assert codes[5] == "circuit_open"

    def test_successful_response_has_no_code(self, rig, world):
        service = EGLService(rig[0])
        response = service.expand(ExpandRequest(phrases=[world.entities[0].name]))
        assert response.ok
        assert response.code is None

    def test_health_payload_surfaces_degraded(self, rig):
        system, faults, _ = rig
        service = EGLService(system)
        assert service.health().payload["degraded"] is False
        faults.configure("preferences.read", error_rate=1.0)
        for _ in range(5):
            service.target(TargetRequest(entity_ids=[0], k=3))
        payload = service.health().payload
        assert payload["degraded"] is True
        assert payload["degraded_reasons"]

    def test_error_code_mapping_is_most_specific_first(self):
        from repro.errors import CorruptArtifactError, StorageError

        assert error_code(CorruptArtifactError("x")) == "corrupt_artifact"
        assert error_code(StorageError("x")) == "storage_error"
