"""Chaos suite for the checkpointed weekly refresh.

The acceptance bar: a refresh killed after *any* stage resumes to a final
artifact whose content digest is byte-identical to an uninterrupted run,
and a 30% storage error rate still completes through retries.
"""

from __future__ import annotations

import pytest

from repro.datasets import BehaviorConfig, BehaviorLogGenerator, World, WorldConfig
from repro.embeddings import SkipGramConfig
from repro.embeddings.mlm import MLMConfig
from repro.embeddings.semantic import SemanticEncoderConfig
from repro.obs import ManualClock, Observability
from repro.online import EGLSystem
from repro.online.system import graph_digest
from repro.resilience import FaultInjector, InjectedCrash, RetryPolicy
from repro.trmp import ALPCConfig, EnsembleConfig, TRMPConfig

WEEKLY_STAGES = ["cooccurrence", "candidates", "ranked"]


def fast_config() -> TRMPConfig:
    return TRMPConfig(
        skipgram=SkipGramConfig(epochs=6, seed=2),
        semantic=SemanticEncoderConfig(mlm=MLMConfig(epochs=3, seed=3)),
        alpc=ALPCConfig(epochs=12, seed=1),
        ensemble=EnsembleConfig(epochs=8, seed=0),
    )


@pytest.fixture(scope="module")
def chaos_world():
    return World(WorldConfig(num_entities=60, num_users=50, seed=9))


@pytest.fixture(scope="module")
def chaos_events(chaos_world):
    return BehaviorLogGenerator(chaos_world, BehaviorConfig(num_days=10, seed=4)).generate()


def make_system(world, root, faults=None, retry=None) -> EGLSystem:
    obs = Observability(clock=ManualClock())
    return EGLSystem(
        world, fast_config(), artifact_root=root, obs=obs,
        retry_policy=retry or RetryPolicy(clock=obs.clock, seed=1),
        faults=faults,
    )


@pytest.fixture(scope="module")
def baseline(chaos_world, chaos_events, tmp_path_factory):
    """One uninterrupted refresh: the digests every chaos run must match."""
    system = make_system(chaos_world, tmp_path_factory.mktemp("baseline"))
    report = system.weekly_refresh(chaos_events)
    return {
        "artifact_digest": report.artifact_digest,
        "stage_digests": dict(system.pipeline.weekly_runs[-1].stage_digests),
    }


@pytest.mark.parametrize("kill_stage", WEEKLY_STAGES)
def test_kill_after_each_stage_resumes_byte_identical(
    kill_stage, chaos_world, chaos_events, baseline, tmp_path
):
    faults = FaultInjector(seed=0)
    faults.fail_at(f"pipeline.{kill_stage}", 1, exception=InjectedCrash)
    crashed = make_system(chaos_world, tmp_path, faults=faults)
    with pytest.raises(InjectedCrash):
        crashed.weekly_refresh(chaos_events)

    # The kill seam fires after the stage commits, so everything up to and
    # including the killed stage survived on disk.
    completed = crashed.registry.checkpoints.completed_stages("weekly-0000")
    expected = WEEKLY_STAGES[: WEEKLY_STAGES.index(kill_stage) + 1]
    assert completed == expected

    # A fresh system over the same root models the restarted process.
    resumed = make_system(chaos_world, tmp_path)
    report = resumed.weekly_refresh(chaos_events, resume=True)
    assert report.resumed_stages == expected
    assert report.artifact_digest == baseline["artifact_digest"]
    assert (
        resumed.pipeline.weekly_runs[-1].stage_digests == baseline["stage_digests"]
    )


def test_resume_without_checkpoints_runs_from_scratch(
    chaos_world, chaos_events, baseline, tmp_path
):
    system = make_system(chaos_world, tmp_path)
    report = system.weekly_refresh(chaos_events, resume=True)
    assert report.resumed_stages == []
    assert report.artifact_digest == baseline["artifact_digest"]


def test_thirty_percent_storage_errors_complete_via_retries(
    chaos_world, chaos_events, baseline, tmp_path
):
    faults = FaultInjector(seed=6)
    for seam in ("registry.write", "registry.read", "checkpoint.write"):
        faults.configure(seam, error_rate=0.3)
    obs = Observability(clock=ManualClock())
    retry = RetryPolicy(max_attempts=6, clock=obs.clock, seed=2)
    system = EGLSystem(
        chaos_world, fast_config(), artifact_root=tmp_path, obs=obs,
        retry_policy=retry, faults=faults,
    )

    report = system.weekly_refresh(chaos_events)

    # Faults really fired, retries really absorbed them, and the result is
    # still byte-identical to the clean run.
    assert sum(faults.failures(s) for s in faults.snapshot()) > 0
    assert report.artifact_digest == baseline["artifact_digest"]
    retries = sum(
        series["value"]
        for series in system.obs.metrics.snapshot()["counters"][
            "resilience_retries_total"
        ]
    )
    assert retries > 0
    assert obs.clock.perf() > 0  # backoff waited on the (manual) clock


def test_ensemble_stage_checkpoint_and_resume(chaos_world, chaos_events, tmp_path):
    # Clean two-week run: the reference ensemble digest.
    clean = make_system(chaos_world, tmp_path / "clean")
    clean.weekly_refresh(chaos_events)
    clean.weekly_refresh(chaos_events)
    reference = clean.pipeline.weekly_runs[-1].stage_digests["ensemble"]

    # Killed run: week 1's crash lands right after the ensemble commits.
    faults = FaultInjector(seed=0)
    faults.fail_at("pipeline.ensemble", 1, exception=InjectedCrash)
    crashed = make_system(chaos_world, tmp_path / "crashed", faults=faults)
    crashed.weekly_refresh(chaos_events)
    with pytest.raises(InjectedCrash):
        crashed.weekly_refresh(chaos_events)
    assert crashed.pipeline.ensemble is not None  # trained before the kill

    crashed.pipeline.ensemble = None
    ensemble = crashed.pipeline.train_ensemble(run_id="weekly-0001", resume=True)
    assert ensemble is crashed.pipeline.ensemble
    run = crashed.pipeline.weekly_runs[-1]
    assert "ensemble" in run.resumed_stages
    assert run.stage_digests["ensemble"] == reference


def test_report_carries_run_identity(chaos_world, chaos_events, tmp_path):
    system = make_system(chaos_world, tmp_path)
    report = system.weekly_refresh(chaos_events)
    assert report.run_id == "weekly-0000"
    assert report.artifact_digest == graph_digest(
        system.pipeline.weekly_runs[-1].ranked_graph
    )
    assert set(system.pipeline.weekly_runs[-1].stage_digests) == set(WEEKLY_STAGES)
