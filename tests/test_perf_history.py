"""Perf-regression history: append, load, trailing-median gate, CLI."""

import json

import pytest

from repro.obs.perf_history import (
    append_history,
    check_regressions,
    load_history,
    main,
)


def _seed(path, bench, metric, values, direction="higher"):
    for value in values:
        append_history(
            path, bench, {metric: value}, directions={metric: direction}
        )


class TestAppendAndLoad:
    def test_append_writes_one_row_per_metric(self, tmp_path):
        path = tmp_path / "history.jsonl"
        rows = append_history(
            path,
            "serving_cache",
            {"speedup_mean": 120.0, "warm_ms_mean": 0.02},
            directions={"warm_ms_mean": "lower"},
            commit="abc123",
            config={"warm_rounds": 50},
            timestamp=1_000.0,
        )
        assert len(rows) == 2
        loaded = load_history(path)
        assert len(loaded) == 2
        by_metric = {r["metric"]: r for r in loaded}
        assert by_metric["speedup_mean"]["direction"] == "higher"
        assert by_metric["warm_ms_mean"]["direction"] == "lower"
        assert by_metric["speedup_mean"]["commit"] == "abc123"
        assert by_metric["speedup_mean"]["config"] == {"warm_rounds": 50}
        assert by_metric["speedup_mean"]["ts"] == 1_000.0

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, "b", "m", [1.0, 2.0])
        with path.open("a") as fh:
            fh.write('{"bench": "b", "metric": "m", "val')  # killed mid-append
        assert len(load_history(path)) == 2

    def test_non_dict_and_unkeyed_rows_are_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('[1, 2]\n{"foo": 1}\n')
        assert load_history(path) == []


class TestRegressionGate:
    def test_insufficient_history_is_never_flagged(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, "b", "m", [100.0, 10.0])  # huge drop, only 1 prior row
        assert check_regressions(load_history(path)) == []

    def test_higher_is_better_drop_is_flagged(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, "b", "speedup", [100.0, 102.0, 98.0, 60.0])
        (finding,) = check_regressions(load_history(path))
        assert finding["metric"] == "speedup"
        assert finding["baseline_median"] == 100.0
        assert finding["change_pct"] == pytest.approx(-40.0)

    def test_lower_is_better_rise_is_flagged(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, "b", "latency", [10.0, 11.0, 9.0, 20.0], direction="lower")
        (finding,) = check_regressions(load_history(path))
        assert finding["direction"] == "lower"
        assert finding["change_pct"] == pytest.approx(100.0)

    def test_moves_inside_tolerance_pass(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, "b", "speedup", [100.0, 100.0, 100.0, 80.0])  # -20% < 25%
        assert check_regressions(load_history(path)) == []

    def test_good_direction_moves_never_flag(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, "b", "speedup", [100.0, 100.0, 100.0, 500.0])
        _seed(path, "b", "latency", [10.0, 10.0, 10.0, 1.0], direction="lower")
        assert check_regressions(load_history(path)) == []

    def test_median_shrugs_off_one_noisy_prior_run(self, tmp_path):
        path = tmp_path / "history.jsonl"
        # One absurd spike in the priors must not poison the baseline.
        _seed(path, "b", "speedup", [100.0, 5000.0, 100.0, 100.0, 95.0])
        assert check_regressions(load_history(path)) == []

    def test_window_bounds_the_baseline(self, tmp_path):
        path = tmp_path / "history.jsonl"
        # Old slow era followed by a fast era; window=3 must only see the
        # fast era, so the latest fast value passes.
        _seed(path, "b", "speedup", [10.0] * 5 + [100.0, 100.0, 100.0, 98.0])
        assert check_regressions(load_history(path), window=3) == []

    def test_zero_baseline_is_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, "b", "m", [0.0, 0.0, 0.0, 5.0])
        assert check_regressions(load_history(path)) == []

    def test_series_are_keyed_by_bench_and_metric(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, "bench_a", "m", [100.0, 100.0, 100.0, 100.0])
        _seed(path, "bench_b", "m", [100.0, 100.0, 100.0, 10.0])
        (finding,) = check_regressions(load_history(path))
        assert finding["bench"] == "bench_b"


class TestCLI:
    def test_exit_zero_on_clean_history(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        _seed(path, "b", "m", [1.0, 1.0, 1.0, 1.0])
        assert main(["--history", str(path)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_zero_on_fresh_checkout_without_history(self, tmp_path, capsys):
        assert main(["--history", str(tmp_path / "none.jsonl")]) == 0

    def test_exit_one_with_report_on_regression(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        _seed(path, "b", "m", [100.0, 100.0, 100.0, 10.0])
        assert main(["--history", str(path)]) == 1
        assert "REGRESSION b.m" in capsys.readouterr().out

    def test_tolerance_flag_widens_the_band(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, "b", "m", [100.0, 100.0, 100.0, 60.0])
        assert main(["--history", str(path)]) == 1
        assert main(["--history", str(path), "--tolerance", "0.5"]) == 0
