"""Masked-language model and semantic entity encoder."""

import numpy as np
import pytest

from repro.embeddings import MaskedLanguageModel, MLMConfig, SemanticEncoderConfig, SemanticEntityEncoder, train_mlm
from repro.errors import ConfigError
from repro.text import Vocab


class TestMLM:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MLMConfig(mask_prob=0.0).validate()
        with pytest.raises(ConfigError):
            MLMConfig(dim=30, num_heads=4).validate()

    def test_loss_decreases(self, rng):
        vocab = Vocab([f"w{i}" for i in range(20)])
        docs = [[f"w{i}", f"w{(i+1) % 20}", f"w{(i+2) % 20}"] for i in range(20)] * 4
        model = MaskedLanguageModel(vocab, MLMConfig(epochs=4, dim=16, max_len=6, seed=0))
        report = train_mlm(model, docs, rng=0)
        first = np.mean(report.losses[:5])
        last = np.mean(report.losses[-5:])
        assert last < first

    def test_empty_documents_raise(self):
        model = MaskedLanguageModel(Vocab(["a"]), MLMConfig(epochs=1))
        with pytest.raises(ConfigError):
            train_mlm(model, [])

    def test_encode_pooled_shape_and_mask(self, rng):
        vocab = Vocab(["a", "b"])
        model = MaskedLanguageModel(vocab, MLMConfig(dim=16, max_len=4))
        ids = np.array([[4, 5, 0, 0]])
        mask = np.array([[True, True, False, False]])
        out = model.encode(ids, mask)
        assert out.shape == (1, 16)


class TestSemanticEncoder:
    def test_embeddings_unit_norm(self, e_semantic, world):
        assert e_semantic.shape[0] == world.num_entities
        np.testing.assert_allclose(
            np.linalg.norm(e_semantic, axis=1), np.ones(world.num_entities), atol=1e-9
        )

    def test_same_topic_more_similar_than_cross(self, world, e_semantic):
        rel = world.relatedness_matrix()
        iu = np.triu_indices(world.num_entities, 1)
        sims = e_semantic @ e_semantic.T
        same = sims[iu][rel[iu] > 0.8]
        cross = sims[iu][rel[iu] < 0.2]
        assert same.mean() > cross.mean()

    def test_encode_text_near_topic_entities(self, world, semantic_encoder, e_semantic):
        entity = world.entities[0]
        query = semantic_encoder.encode_text(entity.name.lower())
        sims = e_semantic @ query
        top = int(np.argmax(sims))
        # The nearest entity should share the query entity's primary topic.
        assert world.entities[top].primary_topic == entity.primary_topic

    def test_pooled_method_shape(self, world, semantic_encoder):
        pooled = semantic_encoder.encode_entities(method="pooled")
        assert pooled.shape[0] == world.num_entities

    def test_unknown_method_raises(self, semantic_encoder):
        with pytest.raises(ConfigError):
            semantic_encoder.encode_entities(method="avg?")
