"""EGLSystem end-to-end integration (offline refresh → online targeting)."""

import numpy as np
import pytest

from repro.datasets import BehaviorConfig, BehaviorLogGenerator
from repro.embeddings import SkipGramConfig
from repro.embeddings.mlm import MLMConfig
from repro.embeddings.semantic import SemanticEncoderConfig
from repro.errors import NotFittedError
from repro.online import EGLSystem
from repro.simulation import ABTestHarness, ConversionModel, RuleBasedTargeting, default_services
from repro.trmp import ALPCConfig, EnsembleConfig, TRMPConfig


@pytest.fixture(scope="module")
def system(world, tmp_path_factory):
    config = TRMPConfig(
        skipgram=SkipGramConfig(epochs=8, seed=2),
        semantic=SemanticEncoderConfig(mlm=MLMConfig(epochs=4, seed=3)),
        alpc=ALPCConfig(epochs=20, seed=1),
        ensemble=EnsembleConfig(epochs=12, seed=0),
    )
    return EGLSystem(world, config, store_path=tmp_path_factory.mktemp("geabase"))


@pytest.fixture(scope="module")
def generator(world):
    return BehaviorLogGenerator(world, BehaviorConfig(seed=5))


@pytest.fixture(scope="module")
def refreshed(system, generator):
    reports = [system.weekly_refresh(generator.generate_week(w)) for w in range(2)]
    recent = generator.generate(start_day=50, num_days=30, rng=77)
    covered = system.daily_preference_refresh(recent)
    return reports, covered, recent


class TestOfflineCadence:
    def test_weekly_reports(self, refreshed):
        reports, _, _ = refreshed
        assert reports[0].week == 0 and reports[1].week == 1
        assert reports[0].graph_version == 1 and reports[1].graph_version == 2
        assert not reports[0].ensemble_trained
        assert reports[1].ensemble_trained
        assert all(r.num_relations > 0 for r in reports)

    def test_store_versions_match_weeks(self, system, refreshed):
        versions = system.store.versions()
        assert [v["tag"] for v in versions] == ["week-0", "week-1"]

    def test_daily_refresh_covers_users(self, refreshed, world):
        _, covered, _ = refreshed
        assert covered > world.num_users * 0.8

    def test_targeting_before_daily_refresh_raises(self, world):
        fresh = EGLSystem(world)
        with pytest.raises(NotFittedError):
            fresh.target_users([0], k=5)


class TestOnlineFlow:
    def test_expand_uses_stored_graph(self, system, refreshed, world):
        entity = world.entities[0]
        view = system.expand([entity.name], depth=2)
        assert view.seeds == [entity.name.lower()]
        assert len(view.entities) >= 1

    def test_target_users_for_phrases(self, system, refreshed, world):
        entity = world.entities[1]
        view, result = system.target_users_for_phrases([entity.name], depth=2, k=15)
        assert len(result.users) == 15
        assert result.elapsed_seconds < 5.0
        scores = [u.score for u in result.users]
        assert scores == sorted(scores, reverse=True)

    def test_cold_phrase_resolves_semantically(self, system, refreshed, world):
        word = world.topic_words[2][0]
        view = system.expand([f"{word} {word}"], depth=1)
        assert len(view.entities) >= 1

    def test_record_choice_feeds_next_week(self, system, refreshed, generator):
        system.record_choice(0, [5, 9])
        assert len(system.feedback) == 2
        report = system.weekly_refresh(generator.generate_week(2))
        assert report.week == 2
        assert len(system.feedback) == 0  # drained into training

    def test_targeted_users_have_high_affinity(self, system, refreshed, world):
        services = default_services(world, rng=3)
        service = services[0]
        _, result = system.target_users_for_phrases(service.phrases, depth=2, k=25)
        aff = service.user_affinity(world)
        assert aff[np.array(result.user_ids)].mean() > aff.mean() * 1.3


class TestABHarness:
    def test_rows_have_sane_fields(self, system, refreshed, world):
        _, _, recent = refreshed
        services = default_services(world, rng=3)[:2]
        rule = RuleBasedTargeting(world, system.pipeline.entity_dict, recent)
        harness = ABTestHarness(world, system, rule, ConversionModel(world))
        rows = harness.run(services, audience_size=30, repetitions=3, rng=5)
        assert len(rows) == 2
        for row in rows:
            assert row.egl_conversions >= 0
            assert 0 <= row.egl_cvr <= 1
            assert 0 <= row.control_cvr <= 1
            assert row.running_time_seconds < 10
            assert row.exposure_delta_pct == pytest.approx(0.0)
