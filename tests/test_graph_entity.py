"""EntityGraph: construction invariants, CSR adjacency, set operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    RELATION_BOTH,
    RELATION_COOCCURRENCE,
    RELATION_SEMANTIC,
    EntityGraph,
)


def random_graph(seed: int, n: int = 12, m: int = 20) -> EntityGraph:
    rng = np.random.default_rng(seed)
    pairs = set()
    while len(pairs) < m:
        u, v = rng.integers(0, n, size=2)
        if u != v:
            pairs.add((min(int(u), int(v)), max(int(u), int(v))))
    pairs = sorted(pairs)
    weights = rng.random(len(pairs)) + 0.01
    return EntityGraph.from_edge_list(n, pairs, weights)


class TestConstruction:
    def test_rejects_self_loops(self):
        with pytest.raises(GraphError):
            EntityGraph(3, np.array([0]), np.array([0]))

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            EntityGraph(3, np.array([0]), np.array([5]))

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(GraphError):
            EntityGraph(3, np.array([0, 1]), np.array([1]))
        with pytest.raises(GraphError):
            EntityGraph(3, np.array([0]), np.array([1]), weight=np.ones(2))

    def test_empty_graph(self):
        g = EntityGraph.from_edge_list(5, [])
        assert g.num_edges == 0
        nbrs, w = g.neighbors(0)
        assert len(nbrs) == 0

    def test_from_edge_list_dedupes_keeping_max_weight(self):
        g = EntityGraph.from_edge_list(4, [(0, 1), (1, 0)], weights=[0.2, 0.9])
        assert g.num_edges == 1
        assert g.weight[0] == pytest.approx(0.9)

    def test_dedupe_keeps_max_relation(self):
        g = EntityGraph.from_edge_list(
            4, [(0, 1), (0, 1)], relations=[RELATION_COOCCURRENCE, RELATION_BOTH]
        )
        assert g.relation[0] == RELATION_BOTH


class TestAdjacency:
    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_neighbors_symmetric(self, seed):
        g = random_graph(seed)
        for u in range(g.num_nodes):
            nbrs, _ = g.neighbors(u)
            for v in nbrs:
                back, _ = g.neighbors(int(v))
                assert u in back

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_degrees_sum_to_twice_edges(self, seed):
        g = random_graph(seed)
        assert g.degrees().sum() == 2 * g.num_edges

    def test_neighbor_weights_align(self):
        g = EntityGraph.from_edge_list(3, [(0, 1), (1, 2)], weights=[0.5, 0.9])
        nbrs, weights = g.neighbors(1)
        lookup = dict(zip(nbrs.tolist(), weights.tolist()))
        assert lookup[0] == pytest.approx(0.5)
        assert lookup[2] == pytest.approx(0.9)

    def test_neighbors_out_of_range(self):
        g = random_graph(0)
        with pytest.raises(GraphError):
            g.neighbors(99)

    def test_has_edge_and_key_set(self):
        g = EntityGraph.from_edge_list(4, [(2, 1)])
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert not g.has_edge(0, 3)
        assert g.edge_key_set() == {(1, 2)}

    def test_directed_edges_doubles(self):
        g = random_graph(1)
        s, d, r = g.directed_edges()
        assert len(s) == 2 * g.num_edges
        assert set(zip(s.tolist(), d.tolist())) == set(
            zip(d.tolist(), s.tolist())
        )


class TestOperations:
    def test_remove_edges(self):
        g = EntityGraph.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        g2 = g.remove_edges([(2, 1)])
        assert g2.num_edges == 2
        assert not g2.has_edge(1, 2)
        assert g.num_edges == 3  # original untouched

    def test_union_max_weight(self):
        a = EntityGraph.from_edge_list(4, [(0, 1)], weights=[0.3])
        b = EntityGraph.from_edge_list(4, [(0, 1), (2, 3)], weights=[0.8, 0.5])
        u = a.union(b)
        assert u.num_edges == 2
        lo, hi = u.canonical_pairs()
        w = dict(zip(zip(lo.tolist(), hi.tolist()), u.weight.tolist()))
        assert w[(0, 1)] == pytest.approx(0.8)

    def test_union_requires_same_node_count(self):
        with pytest.raises(GraphError):
            EntityGraph.from_edge_list(3, []).union(EntityGraph.from_edge_list(4, []))

    def test_subgraph_relabels(self):
        g = EntityGraph.from_edge_list(5, [(0, 1), (1, 4), (2, 3)])
        sub, ids = g.subgraph([1, 4, 2])
        assert sub.num_nodes == 3
        assert list(ids) == [1, 2, 4]
        # Only the (1, 4) edge survives, relabelled to (0, 2).
        assert sub.num_edges == 1
        assert sub.has_edge(0, 2)

    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_to_networkx_round_trip(self, seed):
        g = random_graph(seed)
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_nodes() == g.num_nodes
        assert nx_graph.number_of_edges() == g.num_edges
        for u, v in nx_graph.edges():
            assert g.has_edge(u, v)

    def test_canonical_pairs_ordered(self):
        g = EntityGraph(4, np.array([3, 2]), np.array([1, 0]))
        lo, hi = g.canonical_pairs()
        assert (lo < hi).all()
