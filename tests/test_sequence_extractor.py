"""Entity sequence extractor."""

import pytest

from repro.datasets.behavior import BehaviorEvent, Mention
from repro.errors import ConfigError
from repro.text import EntityDict, EntityEntry, EntitySequenceExtractor


@pytest.fixture()
def tiny_dict():
    return EntityDict(
        [
            EntityEntry(0, "nba", 0, "sport_event"),
            EntityEntry(1, "tesla", 1, "car"),
        ]
    )


def make_event(user, day, text, mentions=()):
    return BehaviorEvent(user_id=user, day=day, channel="search", text=text, mentions=tuple(mentions))


class TestExtractEvent:
    def test_dictionary_backend_finds_entities(self, tiny_dict):
        extractor = EntitySequenceExtractor(tiny_dict)
        event = make_event(0, 1, "watch nba and buy tesla")
        assert extractor.extract_event(event) == [0, 1]

    def test_unknown_backend_raises(self, tiny_dict):
        with pytest.raises(ConfigError):
            EntitySequenceExtractor(tiny_dict, backend="magic")

    def test_ner_backend_requires_model(self, tiny_dict):
        with pytest.raises(ConfigError):
            EntitySequenceExtractor(tiny_dict, backend="ner")


class TestSequences:
    def test_chronological_concatenation(self, tiny_dict):
        extractor = EntitySequenceExtractor(tiny_dict)
        events = [
            make_event(7, 5, "tesla"),
            make_event(7, 1, "nba"),
        ]
        seqs = extractor.extract_sequences(events)
        assert seqs[7].entity_ids == [0, 1]  # day 1 before day 5

    def test_window_filters_old_events(self, tiny_dict):
        extractor = EntitySequenceExtractor(tiny_dict, window_days=30)
        events = [
            make_event(1, 0, "nba"),
            make_event(1, 50, "tesla"),
        ]
        seqs = extractor.extract_sequences(events, as_of_day=50)
        assert seqs[1].entity_ids == [1]

    def test_as_of_day_defaults_to_max(self, tiny_dict):
        extractor = EntitySequenceExtractor(tiny_dict, window_days=5)
        events = [make_event(1, 0, "nba"), make_event(1, 3, "tesla")]
        seqs = extractor.extract_sequences(events)
        assert seqs[1].entity_ids == [0, 1]

    def test_empty_events(self, tiny_dict):
        assert EntitySequenceExtractor(tiny_dict).extract_sequences([]) == {}

    def test_corpus_sequences_drop_singletons(self, tiny_dict):
        extractor = EntitySequenceExtractor(tiny_dict)
        events = [make_event(1, 0, "nba"), make_event(2, 0, "nba tesla")]
        corpus = extractor.corpus_sequences(events)
        assert corpus == [[0, 1]]


class TestGoldRecall:
    def test_dictionary_backend_matches_gold_mentions(self, extractor, events):
        hits = total = 0
        for event in events[:100]:
            found = set(extractor.extract_event(event))
            gold = {m.entity_id for m in event.mentions}
            hits += len(found & gold)
            total += len(gold)
        assert hits / total > 0.99
