"""Full-stack integration: files → offline pipeline → store → API → explain.

One scenario exercising nearly every subsystem the way a deployment would:

1. export the world's logs and Entity Dict to files, reload them;
2. two weekly refreshes (drifted data) persisting graph versions;
3. store compaction, checkpointing the ALPC model, reloading it;
4. daily preference refresh + an incremental single-user update;
5. the serving API end to end, with explanations and calibration checks.
"""

import numpy as np
import pytest

from repro.datasets import (
    BehaviorConfig,
    BehaviorLogGenerator,
    load_entity_dict,
    load_events,
    save_entity_dict,
    save_events,
)
from repro.embeddings import SkipGramConfig
from repro.embeddings.mlm import MLMConfig
from repro.embeddings.semantic import SemanticEncoderConfig
from repro.eval import reliability_report, roc_auc
from repro.nn import load_checkpoint, save_checkpoint
from repro.online import EGLSystem, explain_targeting
from repro.online.api import EGLService, ExpandRequest, TargetRequest
from repro.text.sequence_extractor import UserEntitySequence
from repro.trmp import ALPCConfig, ALPCModel, TRMPConfig


@pytest.fixture(scope="module")
def stack(world, tmp_path_factory):
    base = tmp_path_factory.mktemp("full_stack")
    generator = BehaviorLogGenerator(world, BehaviorConfig(seed=5))

    # 1. Data round-trips through files, as external data would arrive.
    week0 = generator.generate_week(0)
    events_path = base / "week0.jsonl"
    save_events(week0, events_path)
    week0 = load_events(events_path)

    config = TRMPConfig(
        skipgram=SkipGramConfig(epochs=8, seed=2),
        semantic=SemanticEncoderConfig(mlm=MLMConfig(epochs=4, seed=3)),
        alpc=ALPCConfig(epochs=20, seed=1),
    )
    system = EGLSystem(world, config, store_path=base / "geabase")
    system.weekly_refresh(week0)
    system.weekly_refresh(generator.generate_week(1))
    system.daily_preference_refresh(week0 + generator.generate_week(1))
    return base, system, generator


class TestOfflineArtifacts:
    def test_store_has_two_versions_then_compacts(self, stack):
        base, system, _ = stack
        assert [v["version"] for v in system.store.versions()] == [1, 2]
        removed = system.store.compact(keep_last=1)
        assert removed == 1
        assert system.store.load_version().num_edges > 0

    def test_entity_dict_file_round_trip(self, stack, world):
        base, system, _ = stack
        dict_path = base / "dict.tsv"
        save_entity_dict(system.pipeline.entity_dict, dict_path)
        reloaded = load_entity_dict(dict_path)
        assert len(reloaded) == world.num_entities

    def test_alpc_checkpoint_round_trip(self, stack, world):
        base, system, _ = stack
        run = system.pipeline.weekly_runs[-1]
        path = base / "alpc.npz"
        save_checkpoint(run.alpc.model, path)
        clone = ALPCModel(run.candidate.node_features.shape[1], run.alpc.config)
        load_checkpoint(clone, path)
        src, dst, _ = run.split.train_graph.directed_edges()
        from repro.tensor import Tensor, no_grad

        with no_grad():
            x = Tensor(run.candidate.node_features)
            a = run.alpc.model.encode(x, src, dst, world.num_entities).data
            b = clone.encode(x, src, dst, world.num_entities).data
        np.testing.assert_allclose(a, b)

    def test_link_probabilities_sane(self, stack):
        _, system, _ = stack
        run = system.pipeline.weekly_runs[-1]
        pairs, labels = run.split.test_pairs_and_labels()
        probs = run.alpc.predict_pairs(pairs)
        assert roc_auc(labels, probs) > 0.7
        report = reliability_report(labels, probs, num_bins=5)
        assert report.brier < 0.3


class TestServingPath:
    def test_api_flow_with_explanations(self, stack, world):
        _, system, generator = stack
        service = EGLService(system)
        assert service.health().payload["ensemble_ready"]

        phrase = max(world.entities, key=lambda e: e.popularity).name
        expand = service.expand(ExpandRequest(phrases=[phrase], depth=2))
        assert expand.ok and len(expand.payload["entities"]) >= 1

        ids = [e["entity_id"] for e in expand.payload["entities"]][:8]
        target = service.target(TargetRequest(entity_ids=ids, k=10))
        assert target.ok and len(target.payload["users"]) == 10

        # Explanations ground the selection in user histories.
        view = system.expand([phrase], depth=2)
        result = system.target_users(ids, k=10)
        events = generator.generate_week(2)
        sequences = system.pipeline.extractor.extract_sequences(events)
        report = explain_targeting(
            view, result.users, system.preference_store, sequences,
            system.pipeline.entity_dict,
        )
        assert "top users" in report

    def test_incremental_preference_update_changes_ranking(self, stack, world):
        _, system, _ = stack
        store = system.preference_store
        target_entity = world.entities[0].entity_id
        # Make an arbitrary user the heaviest interactor with that entity.
        user = 3
        store.update_user(UserEntitySequence(user, [target_entity] * 10))
        top = store.top_users_for_entity(target_entity, k=1)
        assert top[0].user_id == user

    def test_feedback_loops_into_next_week(self, stack):
        _, system, generator = stack
        system.record_choice(0, [1])
        report = system.weekly_refresh(generator.generate_week(3))
        assert report.week == 2
        assert len(system.feedback) == 0
