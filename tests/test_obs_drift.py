"""Drift primitives and the DriftMonitor: PSI/KL, churn, classification."""

import numpy as np
import pytest

from repro.graph import EntityGraph
from repro.obs import ManualClock, MetricsRegistry
from repro.obs.drift import (
    SEVERITY_CRITICAL,
    SEVERITY_OK,
    SEVERITY_WARNING,
    DriftConfig,
    DriftMonitor,
    DriftReport,
    compare_graphs,
    compare_preference_stores,
    default_probe_entities,
    distribution_shift,
    topk_overlap,
)
from repro.preference.store import PreferenceStore
from repro.text.sequence_extractor import UserEntitySequence


class TestDistributionShift:
    def test_identical_samples_have_near_zero_psi(self, rng):
        values = rng.normal(size=2000)
        shift = distribution_shift(values, values)
        assert shift["psi"] == pytest.approx(0.0, abs=1e-9)
        assert shift["kl"] == pytest.approx(0.0, abs=1e-9)
        assert shift["reference_samples"] == 2000

    def test_same_distribution_fresh_draw_stays_small(self, rng):
        a = rng.normal(size=5000)
        b = rng.normal(size=5000)
        shift = distribution_shift(a, b)
        assert shift["psi"] < 0.1  # "stable" by the PSI convention

    def test_mean_shift_is_large(self, rng):
        a = rng.normal(size=2000)
        b = rng.normal(loc=3.0, size=2000)
        assert distribution_shift(a, b)["psi"] > 1.0

    def test_collapse_to_constant_is_huge(self, rng):
        a = rng.normal(size=2000)
        b = np.zeros(2000)
        assert distribution_shift(a, b)["psi"] > 2.0

    def test_empty_side_reports_none_not_zero(self, rng):
        shift = distribution_shift(rng.normal(size=10), [])
        assert shift["psi"] is None and shift["kl"] is None
        assert shift["current_samples"] == 0

    def test_non_finite_samples_are_dropped(self, rng):
        a = rng.normal(size=500)
        b = np.concatenate([a, [np.inf, -np.inf, np.nan]])
        shift = distribution_shift(a, b)
        assert shift["current_samples"] == 500
        assert shift["psi"] == pytest.approx(0.0, abs=1e-9)

    def test_psi_is_symmetric_and_kl_is_not_negative(self, rng):
        a = rng.normal(size=2000)
        b = rng.normal(loc=0.5, size=2000)
        forward = distribution_shift(a, b)
        assert forward["psi"] >= 0 and forward["kl"] >= 0


class TestTopkOverlap:
    def test_identical_lists(self):
        assert topk_overlap([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint_lists(self):
        assert topk_overlap([1, 2], [3, 4]) == 0.0

    def test_normalised_by_shorter_list(self):
        # Every id of the short list is present: full overlap despite the
        # length mismatch.
        assert topk_overlap([1, 2], [1, 2, 3, 4]) == 1.0

    def test_both_empty_is_full_overlap(self):
        assert topk_overlap([], []) == 1.0

    def test_one_empty_is_zero(self):
        assert topk_overlap([1], []) == 0.0


def _graph(num_nodes, pairs, weights=None, relations=None):
    weights = weights or [0.9] * len(pairs)
    relations = relations or [0] * len(pairs)
    return EntityGraph.from_edge_list(num_nodes, pairs, weights, relations)


class TestCompareGraphs:
    def test_identical_graph_has_no_churn(self):
        g = _graph(10, [(0, 1), (1, 2), (2, 3)])
        m = compare_graphs(g, g)
        assert m["edge_churn"] == 0.0
        assert m["edge_jaccard"] == 1.0
        assert m["edge_ratio"] == 1.0
        assert m["entities_added"] == m["entities_removed"] == 0
        assert m["relation_mix_distance"] == 0.0

    def test_edge_delta_accounting(self):
        old = _graph(10, [(0, 1), (1, 2)])
        new = _graph(10, [(1, 2), (2, 3), (3, 4)])
        m = compare_graphs(old, new)
        assert m["edges_added"] == 2 and m["edges_removed"] == 1
        assert m["edge_jaccard"] == pytest.approx(1 / 4)
        assert m["edge_churn"] == pytest.approx(3 / 4)

    def test_relation_mix_distance(self):
        old = _graph(6, [(0, 1), (1, 2)], relations=[0, 0])
        new = _graph(6, [(0, 1), (1, 2)], relations=[1, 1])
        m = compare_graphs(old, new)
        assert m["relation_mix_distance"] == pytest.approx(1.0)

    def test_empty_old_graph_has_no_edge_ratio(self):
        old = _graph(5, [])
        new = _graph(5, [(0, 1)])
        assert compare_graphs(old, new)["edge_ratio"] is None


def _pref_store(world, seed, zero_scores=False, head=16):
    rng = np.random.default_rng(seed)
    embeddings = rng.normal(size=(world.num_entities, 6))
    sequences = {
        u: UserEntitySequence(u, list(rng.integers(0, world.num_entities, size=6)))
        for u in range(60)
    }
    if zero_scores:
        # The degenerate publish: zero embeddings *and* no direct-frequency
        # term, so every covered user scores exactly 0 for every entity.
        store = PreferenceStore(
            np.zeros_like(embeddings), head_size=head, direct_weight=0.0
        )
    else:
        store = PreferenceStore(embeddings, head_size=head)
    return store.build(sequences, world.num_users)


class TestComparePreferenceStores:
    def test_same_store_has_zero_psi_and_full_overlap(self, world):
        store = _pref_store(world, seed=0)
        probes = default_probe_entities(world.num_entities, 8)
        m = compare_preference_stores(store, store, probes)
        assert m["score_shift"]["psi"] == pytest.approx(0.0, abs=1e-9)
        assert m["topk_overlap_mean"] == 1.0
        assert not m["degenerate_scores"]

    def test_zeroed_store_is_degenerate(self, world):
        old = _pref_store(world, seed=0)
        zeroed = _pref_store(world, seed=0, zero_scores=True)
        probes = default_probe_entities(world.num_entities, 8)
        m = compare_preference_stores(old, zeroed, probes)
        assert m["degenerate_scores"]
        assert m["new_score_std"] == pytest.approx(0.0, abs=1e-12)

    def test_probe_entities_deterministic_and_in_range(self):
        probes = default_probe_entities(100, 10)
        assert probes == default_probe_entities(100, 10)
        assert probes[0] == 0 and probes[-1] == 99
        assert default_probe_entities(3, 10) == [0, 1, 2]


class TestDriftMonitorClassification:
    @pytest.fixture()
    def monitor(self):
        return DriftMonitor(
            config=DriftConfig(), metrics=MetricsRegistry(),
            clock=ManualClock(start=100.0),
        )

    def test_identical_graph_is_ok(self, monitor):
        g = _graph(10, [(0, 1), (1, 2), (2, 3)])
        report = monitor.graph_report(g, g, 1, 2)
        assert report.severity == SEVERITY_OK
        assert report.reasons == []
        assert report.computed_at == 100.0
        assert not report.gated

    def test_empty_new_graph_is_critical(self, monitor):
        old = _graph(10, [(0, 1), (1, 2)])
        report = monitor.graph_report(old, _graph(10, []), 1, 2)
        assert report.severity == SEVERITY_CRITICAL
        assert "empty_graph" in report.reasons

    def test_total_edge_replacement_is_critical(self, monitor):
        old = _graph(20, [(i, i + 1) for i in range(0, 10)])
        new = _graph(20, [(i, i + 1) for i in range(10, 19)])
        report = monitor.graph_report(old, new, 1, 2)
        assert report.severity == SEVERITY_CRITICAL

    def test_moderate_churn_is_warning(self, monitor):
        old = _graph(20, [(i, i + 1) for i in range(10)])
        # keep 3 of 10 edges, add 7 new ones: churn ~0.82 — above the 0.6
        # warning bar, below the 0.98 critical bar.
        new = _graph(
            20, [(0, 1), (1, 2), (2, 3)] + [(i, i + 2) for i in range(10, 17)]
        )
        report = monitor.graph_report(old, new, 1, 2)
        assert report.severity == SEVERITY_WARNING
        assert any(r.startswith("edge_churn") for r in report.reasons)

    def test_zeroed_preferences_are_critical(self, monitor, world):
        old = _pref_store(world, seed=0)
        zeroed = _pref_store(world, seed=0, zero_scores=True)
        report = monitor.preference_report(old, zeroed, 1, 2)
        assert report.severity == SEVERITY_CRITICAL
        assert "degenerate_scores" in report.reasons

    def test_fresh_retrain_of_same_data_stays_below_critical(self, monitor, world):
        # The healthy weekly baseline: same behavior, re-drawn embeddings.
        old = _pref_store(world, seed=0)
        new = _pref_store(world, seed=1)
        report = monitor.preference_report(old, new, 1, 2)
        assert report.severity != SEVERITY_CRITICAL

    def test_metrics_emitted_per_report(self, world):
        metrics = MetricsRegistry()
        monitor = DriftMonitor(metrics=metrics, clock=ManualClock())
        g = _graph(10, [(0, 1)])
        monitor.graph_report(g, g, 1, 2)
        assert metrics.get_value(
            "drift_reports_total", kind="graph", severity="ok"
        ) == 1
        assert metrics.get_value("drift_last_psi", kind="graph") is not None


class TestDriftReportRoundTrip:
    def test_dict_round_trip(self):
        report = DriftReport(
            kind="graph", old_version=1, new_version=2, computed_at=9.0,
            severity=SEVERITY_WARNING, reasons=["edge_churn=0.70"],
            metrics={"edge_churn": 0.7}, gated=False,
        )
        clone = DriftReport.from_dict(report.to_dict())
        assert clone == report
        assert not clone.is_critical
