"""Brute-force and LSH nearest-neighbour indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings import BruteForceKNN, LSHIndex
from repro.errors import ConfigError


def naive_topk(vectors: np.ndarray, q: np.ndarray, k: int, exclude=None):
    unit = vectors / np.linalg.norm(vectors, axis=1, keepdims=True)
    qq = q / np.linalg.norm(q)
    sims = unit @ qq
    if exclude is not None:
        sims[exclude] = -np.inf
    order = np.argsort(-sims)[:k]
    return order, sims[order]


class TestBruteForce:
    def test_rejects_non_matrix(self):
        with pytest.raises(ConfigError):
            BruteForceKNN(np.zeros(5))

    def test_query_matches_naive(self, rng):
        vectors = rng.normal(size=(40, 8))
        knn = BruteForceKNN(vectors)
        ids, scores = knn.query(vectors[3], k=5, exclude=3)
        nids, nscores = naive_topk(vectors, vectors[3], 5, exclude=3)
        np.testing.assert_array_equal(ids, nids)
        np.testing.assert_allclose(scores, nscores)

    def test_all_pairs_topk_matches_per_query(self, rng):
        vectors = rng.normal(size=(25, 6))
        knn = BruteForceKNN(vectors, block_size=7)  # force multiple blocks
        ids, scores = knn.all_pairs_topk(4)
        for u in (0, 7, 24):
            nids, nscores = naive_topk(vectors, vectors[u], 4, exclude=u)
            np.testing.assert_array_equal(ids[u], nids)
            np.testing.assert_allclose(scores[u], nscores)

    def test_no_self_matches(self, rng):
        vectors = rng.normal(size=(15, 4))
        ids, _ = BruteForceKNN(vectors).all_pairs_topk(5)
        for u in range(15):
            assert u not in ids[u]

    @given(st.integers(2, 12), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_k_clamped_to_population(self, n, k):
        rng = np.random.default_rng(n * 13 + k)
        vectors = rng.normal(size=(n, 3))
        ids, scores = BruteForceKNN(vectors).all_pairs_topk(k)
        assert ids.shape == (n, min(k, n - 1))
        # Scores sorted descending per row.
        assert (np.diff(scores, axis=1) <= 1e-12).all()


class TestLSH:
    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            LSHIndex(rng.normal(size=(5, 3)), hash_bits=0)
        with pytest.raises(ConfigError):
            LSHIndex(np.zeros(5))

    def test_recall_on_clustered_data(self, rng):
        centers = rng.normal(size=(5, 16)) * 4
        vectors = np.concatenate([c + rng.normal(size=(30, 16)) * 0.3 for c in centers])
        exact = BruteForceKNN(vectors)
        lsh = LSHIndex(vectors, num_tables=10, hash_bits=8, rng=0)
        recall = lsh.recall_against_exact(exact, k=5, sample=np.arange(0, 150, 10))
        assert recall > 0.7

    def test_query_returns_sorted_scores(self, rng):
        vectors = rng.normal(size=(50, 8))
        lsh = LSHIndex(vectors, rng=0)
        ids, scores = lsh.query(vectors[0], k=10, exclude=0)
        assert 0 not in ids
        assert (np.diff(scores) <= 1e-12).all()

    def test_empty_bucket_query(self, rng):
        vectors = rng.normal(size=(4, 8))
        lsh = LSHIndex(vectors, num_tables=1, hash_bits=12, rng=0)
        # An orthogonal-ish query may hit an empty bucket; must not crash.
        ids, scores = lsh.query(-vectors.sum(axis=0) * 100, k=3)
        assert len(ids) == len(scores)
