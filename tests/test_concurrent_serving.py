"""Thread-safety of the hot read path: contexts, cache, breaker, hot-swap.

The concurrent front end (PR: admission control + load harness) drives
the whole serving stack from a thread pool, so the invariants these tests
pin are correctness requirements, not hygiene:

* one ``RequestContext`` per request — overlapping requests must never
  share or re-stamp one (the pre-fix design kept a single context per
  service);
* the versioned LRU cache must not lose counter updates or corrupt its
  LRU order / bytes accounting under a multi-threaded hammer;
* a half-open circuit breaker must admit exactly ``half_open_max_calls``
  concurrent probes, not one per racing thread;
* a hot-swap during K in-flight expansions must yield every response
  wholly from exactly one generation (no torn reads across artifacts);
* autograd mode is per-thread — racing ``no_grad()`` blocks on serving
  threads must never leave graph recording disabled for a later training
  run in the same process.
"""

import threading
import time

import pytest

from repro.errors import ReproError
from repro.graph import EntityGraph
from repro.obs import ManualClock, Observability
from repro.obs.context import current_context
from repro.online import EGLSystem
from repro.online.api import EGLService, ExpandRequest
from repro.online.reasoning import GraphReasoner
from repro.resilience import HALF_OPEN, CircuitBreaker
from repro.serving import ServingRuntime, VersionedLRUCache


# ----------------------------------------------------------------------
# Satellite 1: per-request RequestContext (regression for the reuse race)
# ----------------------------------------------------------------------
class TestRequestContextPerRequest:
    def test_interleaved_requests_get_distinct_contexts(self, world):
        """Two overlapping requests must observe distinct, stable contexts.

        With the old one-context-per-service design the second request
        re-stamps the shared context while the first is still in flight:
        both threads would see the *same* object and the first thread's
        correlation id would change under it mid-request.
        """
        system = EGLSystem(world)
        graph = EntityGraph.from_edge_list(
            world.num_entities, [(0, 1), (1, 2)], [0.9, 0.8], [0, 0]
        )
        reasoner = GraphReasoner(graph, system.pipeline.entity_dict)
        system.runtime.activate_graph(reasoner, version=1, tag="week-0")
        service = EGLService(system)
        view = system.expand([world.entities[0].name], depth=1)

        barrier = threading.Barrier(2, timeout=5.0)
        observed: list[tuple] = []
        lock = threading.Lock()
        real_expand = system.expand

        def slow_expand(phrases, depth=2, min_score=0.0, deadline=None):
            ctx = current_context()
            entry_id = ctx.correlation_id
            barrier.wait()  # both requests are now in flight together
            time.sleep(0.01)  # give the other thread room to trample
            with lock:
                observed.append((ctx, entry_id, ctx.correlation_id, deadline))
            return view

        system.expand = slow_expand
        try:
            phrase = world.entities[0].name
            requests = [
                ExpandRequest(phrases=[phrase], timeout_ms=60_000.0),
                ExpandRequest(phrases=[phrase]),  # no deadline
            ]
            threads = [
                threading.Thread(target=service.expand, args=(req,))
                for req in requests
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
        finally:
            system.expand = real_expand

        assert len(observed) == 2
        (ctx_a, entry_a, exit_a, dl_a), (ctx_b, entry_b, exit_b, dl_b) = observed
        assert ctx_a is not ctx_b  # distinct objects, not a shared re-stamp
        assert entry_a != entry_b  # distinct correlation ids
        # Ids stayed stable across the overlap window.
        assert entry_a == exit_a and entry_b == exit_b
        # Exactly one request carried a deadline; it never leaked across.
        assert sorted(dl is not None for dl in (dl_a, dl_b)) == [False, True]

    def test_concurrent_requests_mint_unique_journeys(self, world):
        system = EGLSystem(world)
        graph = EntityGraph.from_edge_list(
            world.num_entities, [(0, 1), (1, 2)], [0.9, 0.8], [0, 0]
        )
        reasoner = GraphReasoner(graph, system.pipeline.entity_dict)
        system.runtime.activate_graph(reasoner, version=1, tag="week-0")
        service = EGLService(system)
        phrase = world.entities[0].name
        per_thread, n_threads = 25, 4

        def worker():
            for _ in range(per_thread):
                response = service.expand(ExpandRequest(phrases=[phrase]))
                assert response.ok

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        journeys = service.obs.journeys.tail()
        assert len(journeys) == per_thread * n_threads
        ids = [j["correlation_id"] for j in journeys]
        assert len(set(ids)) == len(ids)


# ----------------------------------------------------------------------
# Satellite 2: thread-safe LRU cache
# ----------------------------------------------------------------------
class TestCacheConcurrency:
    def test_unique_put_hammer_has_exact_eviction_accounting(self):
        """T threads insert all-distinct keys: evictions must account for
        exactly every insert beyond capacity (a double-eviction or lost
        eviction breaks the equality)."""
        capacity, n_threads, per_thread = 32, 8, 400
        cache = VersionedLRUCache(capacity)

        def worker(tid: int) -> None:
            for i in range(per_thread):
                cache.put(1, (tid, i), {"value": i})

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        stats = cache.stats()
        total_puts = n_threads * per_thread
        assert stats["size"] == capacity
        assert stats["evictions"] == total_puts - capacity
        # Side tables stayed congruent.
        assert len(cache._sizes) == len(cache._entries)
        assert cache.approx_bytes == sum(cache._sizes.values())

    def test_mixed_hammer_loses_no_counter_updates(self):
        capacity, n_threads, per_thread = 16, 8, 500
        cache = VersionedLRUCache(capacity)

        def worker(tid: int) -> None:
            for i in range(per_thread):
                key = (i * 7 + tid) % 40
                if cache.get(1, key) is None:
                    cache.put(1, key, {"k": key})

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        stats = cache.stats()
        # Every get counted exactly once — a lost update breaks this.
        assert stats["hits"] + stats["misses"] == n_threads * per_thread
        assert stats["size"] <= capacity
        assert len(cache._sizes) == len(cache._entries)
        assert cache.approx_bytes == sum(cache._sizes.values())

    def test_purge_races_puts_without_corruption(self):
        cache = VersionedLRUCache(64)
        stop = threading.Event()

        def putter() -> None:
            i = 0
            while not stop.is_set():
                cache.put(i % 3, i, i)
                i += 1

        def purger() -> None:
            while not stop.is_set():
                cache.purge_version(0)
                cache.purge_version(1)

        threads = [threading.Thread(target=putter) for _ in range(3)]
        threads += [threading.Thread(target=purger) for _ in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        assert len(cache._sizes) == len(cache._entries)
        assert cache.approx_bytes == sum(cache._sizes.values())


# ----------------------------------------------------------------------
# Satellite 3: half-open admits exactly half_open_max_calls probes
# ----------------------------------------------------------------------
class TestBreakerHalfOpenConcurrency:
    @pytest.mark.parametrize("max_calls", [1, 2])
    def test_exactly_max_calls_probes_pass(self, max_calls):
        clock = ManualClock(start=0.0)
        breaker = CircuitBreaker(
            "probe", failure_threshold=1, recovery_timeout=5.0,
            half_open_max_calls=max_calls, clock=clock,
        )
        breaker.record_failure(ReproError("down"))
        assert breaker.is_open
        clock.advance(6.0)  # recovery window passed: next check half-opens

        n_threads = 12
        barrier = threading.Barrier(n_threads, timeout=5.0)
        results = []
        lock = threading.Lock()

        def caller() -> None:
            barrier.wait()  # maximize the race on the half-open claim
            allowed = breaker.allow_request()
            with lock:
                results.append(allowed)

        threads = [threading.Thread(target=caller) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert sum(results) == max_calls
        assert breaker.state == HALF_OPEN
        # The probe's success closes the breaker for everyone.
        breaker.record_success()
        assert breaker.state == "closed"


# ----------------------------------------------------------------------
# Satellite 4: hot-swap under load — no torn reads across generations
# ----------------------------------------------------------------------
class TestHotSwapUnderLoad:
    def test_every_inflight_expansion_serves_one_whole_generation(self, world):
        """Property: with swaps racing K in-flight expansions, every result
        equals one generation's expected output exactly — never a blend."""
        obs = Observability.disabled()
        runtime = ServingRuntime(cache_size=0, obs=obs)  # every expand computes
        from repro.text import EntityDict

        entity_dict = EntityDict.from_world(world)
        graph_a = EntityGraph.from_edge_list(
            world.num_entities, [(0, 1), (1, 2)], [0.9, 0.8], [0, 0]
        )
        graph_b = EntityGraph.from_edge_list(
            world.num_entities, [(0, 3), (3, 4), (4, 5)], [0.7, 0.6, 0.5], [0, 0, 0]
        )
        reasoner_a = GraphReasoner(graph_a, entity_dict)
        reasoner_b = GraphReasoner(graph_b, entity_dict)
        phrase = world.entities[0].name

        def fingerprint(view) -> tuple:
            return (
                tuple(e.entity_id for e in view.entities),
                tuple(view.hop_sizes),
            )

        runtime.activate_graph(reasoner_a, version=1, tag="gen-a")
        expected_a = fingerprint(runtime.expand([phrase], depth=3))
        runtime.activate_graph(reasoner_b, version=2, tag="gen-b")
        expected_b = fingerprint(runtime.expand([phrase], depth=3))
        assert expected_a != expected_b  # generations are distinguishable

        stop = threading.Event()
        torn: list[tuple] = []
        served = [0]
        lock = threading.Lock()

        def reader() -> None:
            while not stop.is_set():
                got = fingerprint(runtime.expand([phrase], depth=3))
                with lock:
                    served[0] += 1
                    if got not in (expected_a, expected_b):
                        torn.append(got)

        readers = [threading.Thread(target=reader) for _ in range(6)]
        for t in readers:
            t.start()
        for swap in range(40):  # swap storm while readers are in flight
            if swap % 2 == 0:
                runtime.activate_graph(reasoner_a, version=2 * swap + 3, tag="gen-a")
            else:
                runtime.activate_graph(reasoner_b, version=2 * swap + 3, tag="gen-b")
            time.sleep(0.002)
        stop.set()
        for t in readers:
            t.join(timeout=10.0)
        assert served[0] > 0
        assert torn == []  # every response came wholly from one generation


# ----------------------------------------------------------------------
# Autograd mode is per-thread (regression for the global no_grad race)
# ----------------------------------------------------------------------
class TestGradModeThreadIsolation:
    def test_racing_no_grad_blocks_leave_recording_enabled(self):
        """Overlapping no_grad() enters/exits on N threads must restore each
        thread's own mode — with a process-global flag, an exit could restore
        a `False` saved by a concurrent enter, silently disabling autograd
        for every later training run (losses stop decreasing)."""
        from repro.tensor import is_grad_enabled, no_grad

        n = 8
        barrier = threading.Barrier(n)
        errors: list[str] = []

        def worker() -> None:
            barrier.wait()
            for _ in range(300):
                with no_grad():
                    if is_grad_enabled():
                        errors.append("recording enabled inside no_grad")
                if not is_grad_enabled():
                    errors.append("no_grad leaked past its block")

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []
        assert is_grad_enabled()  # the storm must not poison this thread

    def test_no_grad_in_one_thread_does_not_disable_another(self):
        """Inference holding no_grad open must not turn off recording for a
        concurrent training thread."""
        from repro.tensor import Tensor, is_grad_enabled, no_grad

        inside = threading.Event()
        release = threading.Event()

        def inference() -> None:
            with no_grad():
                inside.set()
                release.wait(timeout=10.0)

        t = threading.Thread(target=inference)
        t.start()
        try:
            assert inside.wait(timeout=10.0)
            assert is_grad_enabled()
            x = Tensor([1.0, 2.0], requires_grad=True)
            loss = (x * x).sum()
            loss.backward()
            assert x.grad is not None  # training thread still records
        finally:
            release.set()
            t.join(timeout=10.0)
