"""Front-end admission control: sheds, backpressure, drain, HTTP surface.

``QueryFrontend.dispatch`` is exercised directly (the transport-free
core) for admission/shed/breaker/deadline semantics; one end-to-end test
drives the real ``ThreadingHTTPServer`` over a socket, covering status
codes, ``Retry-After`` headers and the merged GET telemetry routes.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import StorageError
from repro.graph import EntityGraph
from repro.obs import Observability
from repro.online import EGLSystem
from repro.online.api import EGLService
from repro.online.reasoning import GraphReasoner
from repro.serving.frontend import AdmissionController, QueryFrontend, http_status


@pytest.fixture()
def service(world):
    system = EGLSystem(world, obs=Observability())
    graph = EntityGraph.from_edge_list(
        world.num_entities, [(0, 1), (1, 2)], [0.9, 0.8], [0, 0]
    )
    reasoner = GraphReasoner(graph, system.pipeline.entity_dict)
    system.runtime.activate_graph(reasoner, version=1, tag="week-0")
    return EGLService(system)


def _blocking_backend(service, release: threading.Event, entered: threading.Event):
    """Replace ``system.expand`` with one that parks until released."""
    real = service.system.expand

    def blocked(phrases, depth=2, min_score=0.0, deadline=None):
        entered.set()
        release.wait(timeout=10.0)
        return real(phrases, depth=depth, min_score=min_score, deadline=deadline)

    service.system.expand = blocked
    return real


class TestAdmissionController:
    def test_tokens_then_queue_then_shed(self):
        admission = AdmissionController(max_concurrency=1, max_queue=1, queue_timeout=0.05)
        assert admission.try_admit()[0] is True
        # Queue is full once a second caller is waiting; a third sheds
        # immediately rather than waiting behind it.
        waiter_result = []

        def waiter():
            waiter_result.append(admission.try_admit(max_wait=5.0))

        t = threading.Thread(target=waiter)
        t.start()
        for _ in range(100):  # wait until the waiter is queued
            if admission.snapshot()["waiting"] == 1:
                break
            time.sleep(0.005)
        admitted, reason, _ = admission.try_admit()
        assert (admitted, reason) == (False, "queue_full")
        admission.release()  # frees the token: the queued waiter claims it
        t.join(timeout=5.0)
        assert waiter_result[0][0] is True

    def test_queue_timeout_sheds_after_bounded_wait(self):
        admission = AdmissionController(max_concurrency=1, max_queue=4, queue_timeout=0.05)
        assert admission.try_admit()[0] is True
        admitted, reason, waited = admission.try_admit()
        assert (admitted, reason) == (False, "queue_timeout")
        assert waited >= 0.04  # actually waited the bounded window

    def test_drain_wakes_queued_waiters_and_awaits_inflight(self):
        admission = AdmissionController(max_concurrency=1, max_queue=4, queue_timeout=5.0)
        assert admission.try_admit()[0] is True
        results = []
        t = threading.Thread(target=lambda: results.append(admission.try_admit()))
        t.start()
        for _ in range(100):
            if admission.snapshot()["waiting"] == 1:
                break
            time.sleep(0.005)
        admission.begin_drain()
        t.join(timeout=5.0)  # waiter must wake immediately, not time out
        assert results[0][:2] == (False, "draining")
        assert admission.try_admit()[:2] == (False, "draining")
        assert admission.await_idle(timeout=0.05) is False  # one still in flight
        admission.release()
        assert admission.await_idle(timeout=5.0) is True

    def test_zero_wait_means_admit_or_shed(self):
        admission = AdmissionController(max_concurrency=1, max_queue=8, queue_timeout=5.0)
        assert admission.try_admit(max_wait=0.0)[0] is True
        start = time.monotonic()
        admitted, reason, _ = admission.try_admit(max_wait=0.0)
        assert (admitted, reason) == (False, "queue_full")
        assert time.monotonic() - start < 1.0  # no queueing happened


class TestDispatch:
    def test_expand_ok(self, service, world):
        frontend = QueryFrontend(service, max_concurrency=2)
        status, envelope = frontend.dispatch(
            "expand", {"phrases": [world.entities[0].name], "depth": 2}
        )
        assert status == 200
        assert envelope["ok"] is True
        assert envelope["graph_version"] == 1
        assert envelope["payload"]["entities"]

    def test_unknown_endpoint_and_bad_fields_are_400(self, service):
        frontend = QueryFrontend(service)
        status, envelope = frontend.dispatch("nope", {})
        assert status == 400 and envelope["code"] == "invalid_argument"
        status, envelope = frontend.dispatch("expand", {"bogus_field": 1})
        assert status == 400 and envelope["code"] == "invalid_argument"
        status, envelope = frontend.dispatch("target_batch", {"requests": "nope"})
        assert status == 400 and envelope["code"] == "invalid_argument"

    def test_queue_full_sheds_429_with_retry_after(self, service, world):
        release, entered = threading.Event(), threading.Event()
        _blocking_backend(service, release, entered)
        frontend = QueryFrontend(
            service, max_concurrency=1, max_queue=0, queue_timeout=0.02
        )
        phrase = world.entities[0].name
        blocker = threading.Thread(
            target=frontend.dispatch, args=("expand", {"phrases": [phrase]})
        )
        blocker.start()
        assert entered.wait(timeout=5.0)
        try:
            status, envelope = frontend.dispatch("expand", {"phrases": [phrase]})
            assert status == 429
            assert envelope["ok"] is False
            assert envelope["code"] == "queue_full"
            assert envelope["retry_after_ms"] >= 50
        finally:
            release.set()
            blocker.join(timeout=10.0)
        stats = frontend.stats()
        assert stats["admission"]["shed"]["queue_full"] == 1

    def test_queue_timeout_sheds_when_token_never_frees(self, service, world):
        release, entered = threading.Event(), threading.Event()
        _blocking_backend(service, release, entered)
        frontend = QueryFrontend(
            service, max_concurrency=1, max_queue=4, queue_timeout=0.05
        )
        phrase = world.entities[0].name
        blocker = threading.Thread(
            target=frontend.dispatch, args=("expand", {"phrases": [phrase]})
        )
        blocker.start()
        assert entered.wait(timeout=5.0)
        try:
            status, envelope = frontend.dispatch("expand", {"phrases": [phrase]})
            assert status == 429
            assert envelope["code"] == "queue_timeout"
        finally:
            release.set()
            blocker.join(timeout=10.0)

    def test_draining_sheds_503(self, service, world):
        frontend = QueryFrontend(service)
        frontend.admission.begin_drain()
        status, envelope = frontend.dispatch(
            "expand", {"phrases": [world.entities[0].name]}
        )
        assert status == 503
        assert envelope["code"] == "draining"
        assert envelope["retry_after_ms"] == 1000.0

    def test_deadline_spent_queueing_sheds_504(self, service, world):
        release, entered = threading.Event(), threading.Event()
        _blocking_backend(service, release, entered)
        frontend = QueryFrontend(
            service, max_concurrency=1, max_queue=4, queue_timeout=0.2
        )
        phrase = world.entities[0].name
        blocker = threading.Thread(
            target=frontend.dispatch, args=("expand", {"phrases": [phrase]})
        )
        blocker.start()
        assert entered.wait(timeout=5.0)
        try:
            # 20ms budget < queue_timeout: the wait is clipped to the
            # budget, which expires while queued → shed as 504, and the
            # runtime is never touched.
            status, envelope = frontend.dispatch(
                "expand", {"phrases": [phrase], "timeout_ms": 20.0}
            )
            assert status in (429, 504)
            assert envelope["code"] in ("queue_timeout", "deadline_exceeded")
        finally:
            release.set()
            blocker.join(timeout=10.0)

    def test_backend_faults_trip_frontend_breaker(self, service, world):
        frontend = QueryFrontend(service)
        frontend.breaker.failure_threshold = 2

        def broken(phrases, **kwargs):
            raise StorageError("disk on fire")

        service.system.expand = broken
        phrase = world.entities[0].name
        for _ in range(2):
            status, envelope = frontend.dispatch("expand", {"phrases": [phrase]})
            assert status == 500
            assert envelope["code"] == "storage_error"
        # Breaker tripped: next request is rejected before admission.
        status, envelope = frontend.dispatch("expand", {"phrases": [phrase]})
        assert status == 503
        assert envelope["code"] == "circuit_open"
        assert "retry_after_ms" in envelope
        assert frontend.stats()["breaker"]["state"] == "open"

    def test_caller_errors_do_not_trip_breaker(self, service):
        frontend = QueryFrontend(service)
        frontend.breaker.failure_threshold = 1
        for _ in range(3):
            status, _ = frontend.dispatch("expand", {"phrases": [], "depth": -1})
            assert status == 400
        assert frontend.stats()["breaker"]["state"] == "closed"

    def test_shed_metrics_are_exported(self, service, world):
        frontend = QueryFrontend(service)
        frontend.admission.begin_drain()
        frontend.dispatch("expand", {"phrases": [world.entities[0].name]})
        metrics = service.obs.metrics
        assert metrics.get_value("frontend_shed_total", reason="draining") == 1.0
        assert metrics.get_value(
            "frontend_requests_total", endpoint="expand", outcome="shed"
        ) == 1.0
        assert metrics.get_value("frontend_draining") == 1.0


class TestHTTPSurface:
    def test_end_to_end_over_sockets(self, service, world):
        frontend = QueryFrontend(service, max_concurrency=4)
        phrase = world.entities[0].name
        with frontend:
            base = frontend.url
            body = json.dumps({"phrases": [phrase], "depth": 2}).encode()
            request = urllib.request.Request(
                f"{base}/expand", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10.0) as response:
                assert response.status == 200
                envelope = json.loads(response.read())
            assert envelope["ok"] is True and envelope["payload"]["entities"]

            # Malformed JSON → 400 envelope, not a stack trace.
            bad = urllib.request.Request(
                f"{base}/expand", data=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad, timeout=10.0)
            assert excinfo.value.code == 400

            # Merged GET surface: frontend stats + service telemetry.
            with urllib.request.urlopen(f"{base}/frontend", timeout=10.0) as response:
                stats = json.loads(response.read())
            assert stats["admission"]["max_concurrency"] == 4
            with urllib.request.urlopen(f"{base}/metrics", timeout=10.0) as response:
                exposition = response.read().decode()
            assert "frontend_requests_total" in exposition

            # Draining: shed with Retry-After header.
            frontend.admission.begin_drain()
            shed = urllib.request.Request(
                f"{base}/expand", data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(shed, timeout=10.0)
            assert excinfo.value.code == 503
            assert int(excinfo.value.headers["Retry-After"]) >= 1
        assert frontend._httpd is None  # stop() tore the listener down

    def test_stop_drains_inflight_requests(self, service, world):
        release, entered = threading.Event(), threading.Event()
        _blocking_backend(service, release, entered)
        frontend = QueryFrontend(service, max_concurrency=2)
        phrase = world.entities[0].name
        results = []
        worker = threading.Thread(
            target=lambda: results.append(
                frontend.dispatch("expand", {"phrases": [phrase]})
            )
        )
        worker.start()
        assert entered.wait(timeout=5.0)
        releaser = threading.Timer(0.1, release.set)
        releaser.start()
        try:
            drained = frontend.stop(drain_timeout=10.0)
        finally:
            release.set()
            worker.join(timeout=10.0)
            releaser.cancel()
        assert drained is True
        # The in-flight request finished normally despite the drain.
        assert results and results[0][0] == 200


class TestStatusMapping:
    def test_http_status_table(self):
        assert http_status(None) == 200
        assert http_status("invalid_argument") == 400
        assert http_status("queue_full") == 429
        assert http_status("queue_timeout") == 429
        assert http_status("draining") == 503
        assert http_status("circuit_open") == 503
        assert http_status("not_ready") == 503
        assert http_status("deadline_exceeded") == 504
        assert http_status("internal") == 500
        assert http_status("storage_error") == 500
