"""CSR artifact substrate: roundtrip, corruption, and CSR↔dict parity.

The load-bearing property: ``k_hop_expansion`` over a frozen
:class:`CSRGraph` (vectorized frontier sweep) and over the legacy
per-node adjacency path (pure-Python dict walk) must return *identical*
expansions — same hop ordering, same scores, same parents — on any graph,
under every knob combination. Speed without parity doesn't count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CorruptArtifactError, StorageError
from repro.graph import CSRGraph, EntityGraph, GraphStore, csr_meta_digest
from repro.graph.csr import META_NAME
from repro.graph.khop import _top_k_stable, k_hop_expansion


def random_edges(rng, num_nodes, max_edges=150):
    """Unique undirected edges with float32-representable weights."""
    m = int(rng.integers(5, max_edges))
    src = rng.integers(0, num_nodes, size=3 * m)
    dst = rng.integers(0, num_nodes, size=3 * m)
    seen = {}
    for u, v in zip(src, dst):
        if u == v:
            continue
        seen.setdefault((min(int(u), int(v)), max(int(u), int(v))), None)
        if len(seen) == m:
            break
    pairs = sorted(seen)
    weights = rng.uniform(0.05, 1.0, size=len(pairs)).astype(np.float32)
    return pairs, weights.astype(np.float64)


class DictReader:
    """The legacy point-read protocol: no ``csr_view``, so expansion over
    this reader exercises the pure-Python pointwise kernel."""

    def __init__(self, num_nodes, pairs, weights):
        self.num_nodes = num_nodes
        self._adj = {}
        for (u, v), w in zip(pairs, weights):
            self._adj.setdefault(u, []).append((v, float(w)))
            self._adj.setdefault(v, []).append((u, float(w)))
        for rows in self._adj.values():
            rows.sort()

    def neighbors(self, node):
        rows = self._adj.get(int(node), [])
        ids = np.array([v for v, _ in rows], dtype=np.int64)
        ws = np.array([w for _, w in rows], dtype=np.float64)
        return ids, ws


def expansion_key(result):
    return (result.seeds, result.hops, result.scores, result.parents)


class TestRoundtrip:
    def test_save_load_preserves_structure(self, tmp_path, rng):
        pairs, weights = random_edges(rng, num_nodes=40)
        relations = rng.integers(0, 3, size=len(pairs))
        frozen = CSRGraph.from_edges(40, np.array(pairs), weights, relations)
        frozen.save(tmp_path / "csr")

        loaded = CSRGraph.load(tmp_path / "csr")
        assert loaded.num_nodes == 40
        assert loaded.num_edges == len(pairs)
        assert np.array_equal(loaded.offsets, frozen.offsets)
        assert np.array_equal(loaded.neighbors_arr, frozen.neighbors_arr)
        assert np.array_equal(loaded.weights_arr, frozen.weights_arr)
        assert np.array_equal(loaded.relations_arr, frozen.relations_arr)
        # Memmap-backed: the default open maps pages instead of copying.
        assert isinstance(loaded.neighbors_arr, np.memmap)
        assert not loaded.neighbors_arr.flags.writeable

    def test_rows_sorted_ascending_by_neighbor(self, rng):
        pairs, weights = random_edges(rng, num_nodes=30)
        frozen = CSRGraph.from_edges(30, np.array(pairs), weights)
        for node in range(30):
            ids, _ = frozen.neighbors(node)
            assert np.all(np.diff(ids) > 0)  # sorted, no duplicates

    def test_neighbors_batch_matches_point_reads(self, rng):
        pairs, weights = random_edges(rng, num_nodes=25)
        frozen = CSRGraph.from_edges(25, np.array(pairs), weights)
        nodes = np.array([3, 0, 17, 3])
        rep, ids, ws = frozen.neighbors_batch(nodes)
        for i, node in enumerate(nodes):
            point_ids, point_ws = frozen.neighbors(node)
            assert np.array_equal(ids[rep == i], point_ids)
            assert np.array_equal(ws[rep == i], point_ws)

    def test_entity_graph_roundtrip(self, rng):
        pairs, weights = random_edges(rng, num_nodes=20)
        graph = EntityGraph.from_edge_list(
            20, pairs, np.asarray(weights, dtype=np.float32), [1] * len(pairs)
        )
        back = CSRGraph.from_entity_graph(graph).graph()
        assert np.array_equal(
            np.stack(back.canonical_pairs(), 1), np.stack(graph.canonical_pairs(), 1)
        )
        assert np.allclose(back.weight, graph.weight)

    def test_validate_proves_checksums(self, tmp_path, rng):
        pairs, weights = random_edges(rng, num_nodes=15)
        directory = CSRGraph.from_edges(15, np.array(pairs), weights).save(
            tmp_path / "csr"
        )
        assert CSRGraph.validate(directory)
        assert len(csr_meta_digest(directory)) == 64


class TestCorruption:
    def freeze(self, tmp_path, rng, num_nodes=15):
        pairs, weights = random_edges(rng, num_nodes)
        return CSRGraph.from_edges(num_nodes, np.array(pairs), weights).save(
            tmp_path / "csr"
        )

    def test_missing_directory_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="missing"):
            CSRGraph.load(tmp_path / "nope")

    def test_truncated_array_fails_verification(self, tmp_path, rng):
        directory = self.freeze(tmp_path, rng)
        path = directory / "neighbors.npy"
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(CorruptArtifactError, match="checksum"):
            CSRGraph.load(directory, verify=True)

    def test_torn_manifest_is_corrupt(self, tmp_path, rng):
        directory = self.freeze(tmp_path, rng)
        (directory / META_NAME).write_text("{torn", encoding="utf-8")
        with pytest.raises(CorruptArtifactError):
            CSRGraph.load(directory)

    def test_unknown_format_is_corrupt(self, tmp_path, rng):
        directory = self.freeze(tmp_path, rng)
        (directory / META_NAME).write_text('{"format": "csr-v99"}', encoding="utf-8")
        with pytest.raises(CorruptArtifactError, match="format"):
            CSRGraph.load(directory)


class TestExpansionParity:
    """Property-style: vectorized CSR expansion == pointwise dict expansion."""

    @pytest.mark.parametrize("seed", range(8))
    def test_default_knobs(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(10, 60))
        pairs, weights = random_edges(rng, num_nodes)
        csr = CSRGraph.from_edges(num_nodes, np.array(pairs), weights)
        legacy = DictReader(num_nodes, pairs, weights)
        seeds = sorted(
            rng.choice(num_nodes, size=int(rng.integers(1, 4)), replace=False).tolist()
        )
        for depth in (0, 1, 2, 3):
            assert expansion_key(
                k_hop_expansion(csr, seeds, depth)
            ) == expansion_key(k_hop_expansion(legacy, seeds, depth))

    @pytest.mark.parametrize("seed", range(8))
    def test_knob_corners(self, seed):
        rng = np.random.default_rng(100 + seed)
        num_nodes = int(rng.integers(12, 50))
        pairs, weights = random_edges(rng, num_nodes)
        csr = CSRGraph.from_edges(num_nodes, np.array(pairs), weights)
        legacy = DictReader(num_nodes, pairs, weights)
        seeds = [int(rng.integers(0, num_nodes))]
        for min_w in (0.0, 0.3, 0.6):
            for max_nodes in (None, 1, 5, 20):
                for cap in (None, 1, 2, 3):
                    kwargs = dict(
                        min_edge_weight=min_w,
                        max_nodes=max_nodes,
                        max_neighbors_per_node=cap,
                    )
                    assert expansion_key(
                        k_hop_expansion(csr, seeds, 3, **kwargs)
                    ) == expansion_key(k_hop_expansion(legacy, seeds, 3, **kwargs))

    def test_parity_against_real_snapshot_reader(self, tmp_path, rng):
        """End to end: the GraphStore's legacy dict reader vs its frozen
        CSR artifact must expand identically."""
        num_nodes = 40
        pairs, weights = random_edges(rng, num_nodes)
        store = GraphStore(tmp_path / "gs", num_nodes=num_nodes)
        store.put_edges(pairs, list(weights))
        version = store.commit_version(tag="parity")

        legacy = store.snapshot_reader(version, use_csr=False)
        csr = CSRGraph.load(store.csr_path(version))
        assert legacy.artifact_format == "snapshot"
        seeds = [pairs[0][0]]
        for depth in (1, 2, 3):
            assert expansion_key(
                k_hop_expansion(csr, seeds, depth)
            ) == expansion_key(k_hop_expansion(legacy, seeds, depth))

    def test_entity_graph_uses_vectorized_kernel(self, rng):
        """EntityGraph exposes ``csr_view`` so the in-memory hot path gets
        the vectorized sweep — with results identical to the pointwise
        kernel walking the *same* (insertion-ordered) adjacency."""
        num_nodes = 30
        pairs, weights = random_edges(rng, num_nodes)
        graph = EntityGraph.from_edge_list(
            num_nodes, pairs, weights, [0] * len(pairs)
        )
        assert hasattr(graph, "csr_view")

        class PointwiseOnly:
            num_nodes = graph.num_nodes
            neighbors = staticmethod(graph.neighbors)

        seeds = [pairs[0][0], pairs[-1][1]]
        for cap in (None, 2):
            assert expansion_key(
                k_hop_expansion(graph, seeds, 2, max_neighbors_per_node=cap)
            ) == expansion_key(
                k_hop_expansion(PointwiseOnly(), seeds, 2, max_neighbors_per_node=cap)
            )


class TestTopKDeterminism:
    """The argpartition cap must match a full stable argsort exactly."""

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_stable_argsort(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        # Quantized weights force ties — the case argpartition alone gets
        # wrong without the stable tie-break.
        weights = rng.integers(0, 5, size=n) / 4.0
        for k in (1, 2, 3, n // 2 + 1, n, n + 5):
            expected = np.argsort(-weights, kind="stable")[:k]
            assert np.array_equal(_top_k_stable(weights, k), expected)

    def test_capped_expansion_is_deterministic(self, rng):
        pairs, weights = random_edges(rng, num_nodes=30)
        # All-equal weights: every neighbor ties, so the cap must break
        # ties by ascending position (== ascending neighbor id) every run.
        ties = np.full(len(pairs), 0.5)
        graph = CSRGraph.from_edges(30, np.array(pairs), ties)
        first = k_hop_expansion(graph, [pairs[0][0]], 2, max_neighbors_per_node=2)
        for _ in range(3):
            again = k_hop_expansion(graph, [pairs[0][0]], 2, max_neighbors_per_node=2)
            assert expansion_key(again) == expansion_key(first)
