"""Telemetry HTTP endpoint: routing, error envelopes, scrape metrics."""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, TelemetryServer
from repro.obs.server import JSON_CONTENT_TYPE, PROMETHEUS_CONTENT_TYPE


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers["Content-Type"], response.read()


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def server(registry):
    routes = {
        "/metrics": lambda: (PROMETHEUS_CONTENT_TYPE, "up 1\n"),
        "/health": lambda: (JSON_CONTENT_TYPE, json.dumps({"ok": True})),
        "/boom": lambda: (_ for _ in ()).throw(RuntimeError("route bug")),
    }
    with TelemetryServer(routes, metrics=registry) as srv:
        yield srv


class TestRouting:
    def test_ephemeral_port_bound_and_url(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_known_routes_serve_with_content_type(self, server):
        status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert body == b"up 1\n"
        status, ctype, body = _get(server.url + "/health")
        assert status == 200 and ctype == JSON_CONTENT_TYPE
        assert json.loads(body) == {"ok": True}

    def test_trailing_slash_and_query_string_normalised(self, server):
        status, _, body = _get(server.url + "/health/?verbose=1")
        assert status == 200 and json.loads(body) == {"ok": True}

    def test_unknown_path_is_json_404_listing_routes(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        assert err.value.code == 404
        payload = json.loads(err.value.read())
        assert payload["routes"] == ["/boom", "/health", "/metrics"]

    def test_route_exception_is_json_500_not_a_dead_thread(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/boom")
        assert err.value.code == 500
        assert "route bug" in json.loads(err.value.read())["error"]
        # The server survives the failed route and keeps serving.
        status, _, _ = _get(server.url + "/metrics")
        assert status == 200

    def test_scrapes_counted_by_path_and_status(self, server, registry):
        _get(server.url + "/metrics")
        _get(server.url + "/metrics")
        try:
            _get(server.url + "/nope")
        except urllib.error.HTTPError:
            pass
        assert registry.get_value(
            "telemetry_http_requests_total", path="/metrics", status="200"
        ) == 2
        assert registry.get_value(
            "telemetry_http_requests_total", path="/nope", status="404"
        ) == 1


class TestHeadAndContentLength:
    def test_get_carries_content_length(self, server):
        request = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(request, timeout=5) as response:
            body = response.read()
            assert int(response.headers["Content-Length"]) == len(body)
            assert body == b"up 1\n"

    def test_head_returns_headers_without_body(self, server):
        request = urllib.request.Request(server.url + "/metrics", method="HEAD")
        with urllib.request.urlopen(request, timeout=5) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            # Content-Length advertises the GET body size; the body itself
            # must be absent.
            assert int(response.headers["Content-Length"]) == len(b"up 1\n")
            assert response.read() == b""

    def test_head_unknown_path_is_bodyless_404(self, server):
        request = urllib.request.Request(server.url + "/nope", method="HEAD")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 404
        assert err.value.read() == b""
        assert int(err.value.headers["Content-Length"]) > 0


class TestLifecycle:
    def test_empty_route_table_rejected(self):
        with pytest.raises(ConfigError):
            TelemetryServer({})

    def test_route_must_start_with_slash(self):
        with pytest.raises(ConfigError):
            TelemetryServer({"metrics": lambda: ("text/plain", "x")})

    def test_stop_releases_the_port_and_start_is_idempotent(self):
        server = TelemetryServer({"/x": lambda: ("text/plain", "x")})
        server.start()
        server.start()  # second start is a no-op, not a second bind
        port = server.port
        server.stop()
        server.stop()  # double stop is safe
        # The port is free again: a new server can bind it immediately.
        reuse = TelemetryServer({"/x": lambda: ("text/plain", "x")}, port=port)
        with reuse:
            status, _, _ = _get(reuse.url + "/x")
            assert status == 200

    def test_bytes_bodies_pass_through(self):
        with TelemetryServer({"/raw": lambda: ("application/octet-stream", b"\x00\x01")}) as srv:
            status, _, body = _get(srv.url + "/raw")
            assert status == 200 and body == b"\x00\x01"
