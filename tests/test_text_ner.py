"""NER tagger: span decoding, training, entity extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.text import (
    NERTagger,
    TAG_B,
    TAG_I,
    TAG_O,
    Vocab,
    extract_entities,
    make_ner_examples,
    spans_from_tags,
    train_ner,
)


class TestSpansFromTags:
    def test_simple_span(self):
        assert spans_from_tags([TAG_O, TAG_B, TAG_I, TAG_O]) == [(1, 2)]

    def test_adjacent_spans(self):
        assert spans_from_tags([TAG_B, TAG_B, TAG_I]) == [(0, 0), (1, 2)]

    def test_span_at_end(self):
        assert spans_from_tags([TAG_O, TAG_B]) == [(1, 1)]

    def test_orphan_inside_tolerated(self):
        assert spans_from_tags([TAG_O, TAG_I, TAG_I, TAG_O]) == [(1, 2)]

    def test_empty(self):
        assert spans_from_tags([]) == []

    @given(st.lists(st.sampled_from([TAG_O, TAG_B, TAG_I]), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_spans_are_sorted_and_disjoint(self, tags):
        spans = spans_from_tags(tags)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 < s2
        for s, e in spans:
            assert 0 <= s <= e < len(tags)
            assert tags[s] in (TAG_B, TAG_I)


class TestExamples:
    def test_gold_tags_align_with_mentions(self, events):
        examples = make_ner_examples(events[:20])
        for (tokens, tags), event in zip(examples, events[:20]):
            assert len(tokens) == len(tags)
            for mention in event.mentions:
                assert tags[mention.start] == TAG_B
                for i in range(mention.start + 1, mention.end + 1):
                    assert tags[i] == TAG_I


class TestTraining:
    def test_training_beats_majority_baseline(self, events):
        examples = make_ner_examples(events[:250])
        vocab = Vocab.build([tokens for tokens, _ in examples])
        tagger = NERTagger(len(vocab), rng=0)
        report = train_ner(tagger, vocab, examples, epochs=3, rng=0)
        majority = np.mean(
            [tag == TAG_O for _, tags in examples for tag in tags]
        )
        baseline = max(majority, 1 - majority)
        assert report.token_accuracy > baseline + 0.05
        assert report.losses[0] > report.losses[-1]

    def test_empty_examples_raise(self):
        tagger = NERTagger(10, rng=0)
        with pytest.raises(ConfigError):
            train_ner(tagger, Vocab([]), [])


class TestExtraction:
    def test_extraction_links_through_dict(self, events, entity_dict):
        examples = make_ner_examples(events[:250])
        vocab = Vocab.build([tokens for tokens, _ in examples])
        tagger = NERTagger(len(vocab), rng=0)
        train_ner(tagger, vocab, examples, epochs=3, rng=0)
        hits = total = 0
        for event in events[250:280]:
            found = {e.entity_id for e in extract_entities(tagger, vocab, event.tokens, entity_dict)}
            gold = {m.entity_id for m in event.mentions}
            hits += len(found & gold)
            total += len(gold)
        assert hits / total > 0.4  # small model, but clearly above zero

    def test_extraction_only_returns_dict_entities(self, events, entity_dict):
        examples = make_ner_examples(events[:100])
        vocab = Vocab.build([tokens for tokens, _ in examples])
        tagger = NERTagger(len(vocab), rng=0)
        for event in events[:10]:
            for entry in extract_entities(tagger, vocab, event.tokens, entity_dict):
                assert entity_dict.by_id(entry.entity_id) is not None
