"""TRMP pipeline orchestration (weekly runs + ensemble)."""

import numpy as np
import pytest

from repro.datasets import BehaviorConfig, BehaviorLogGenerator
from repro.embeddings import SkipGramConfig
from repro.embeddings.mlm import MLMConfig
from repro.embeddings.semantic import SemanticEncoderConfig
from repro.errors import NotFittedError
from repro.eval import AnnotatorPanel
from repro.graph import RELATION_RANKED
from repro.trmp import ALPCConfig, EnsembleConfig, TRMPConfig, TRMPipeline


@pytest.fixture(scope="module")
def fast_config():
    return TRMPConfig(
        skipgram=SkipGramConfig(epochs=8, seed=2),
        semantic=SemanticEncoderConfig(mlm=MLMConfig(epochs=4, seed=3)),
        alpc=ALPCConfig(epochs=20, seed=1),
        ensemble=EnsembleConfig(epochs=15, seed=0),
        ensemble_window=3,
    )


@pytest.fixture(scope="module")
def pipeline(world, fast_config):
    return TRMPipeline(world, fast_config)


@pytest.fixture(scope="module")
def two_weeks(pipeline, world):
    generator = BehaviorLogGenerator(world, BehaviorConfig(seed=5))
    runs = [pipeline.run_week(generator.generate_week(w)) for w in range(2)]
    return runs


class TestWeeklyRuns:
    def test_empty_pipeline_guards(self, world, fast_config):
        fresh = TRMPipeline(world, fast_config)
        with pytest.raises(NotFittedError):
            fresh.latest_graph()
        with pytest.raises(NotFittedError):
            fresh.entity_embeddings()
        with pytest.raises(NotFittedError):
            fresh.train_ensemble()

    def test_runs_are_recorded(self, pipeline, two_weeks):
        assert [run.week for run in two_weeks] == [0, 1]
        assert pipeline.weekly_runs[:2] == two_weeks

    def test_ranked_graph_is_subset_of_candidates(self, two_weeks):
        run = two_weeks[0]
        for u, v in zip(*run.ranked_graph.canonical_pairs()):
            assert run.candidate.graph.has_edge(int(u), int(v))
        assert (run.ranked_graph.relation == RELATION_RANKED).all()

    def test_ranking_improves_relation_accuracy(self, world, two_weeks):
        panel = AnnotatorPanel(world)
        run = two_weeks[0]
        lo, hi = run.candidate.graph.canonical_pairs()
        candidate_acc = panel.evaluate_relations(
            np.stack([lo, hi], 1), sample_size=300, rng=0
        ).acc
        lo, hi = run.ranked_graph.canonical_pairs()
        ranked_acc = panel.evaluate_relations(
            np.stack([lo, hi], 1), sample_size=300, rng=0
        ).acc
        assert ranked_acc > candidate_acc

    def test_snapshot_embeddings_shape(self, world, two_weeks):
        z = two_weeks[0].snapshot_embeddings
        assert z.shape[0] == world.num_entities


class TestEnsembleIntegration:
    def test_train_ensemble_and_embeddings(self, pipeline, world, two_weeks):
        ensemble = pipeline.train_ensemble()
        h = pipeline.entity_embeddings()
        dim = two_weeks[0].snapshot_embeddings.shape[1]
        assert h.shape == (world.num_entities, 2 * dim)
        assert pipeline.ensemble is ensemble

    def test_latest_graph_comes_from_last_week(self, pipeline, two_weeks):
        assert pipeline.latest_graph() is two_weeks[-1].ranked_graph


class TestFeedback:
    def test_feedback_pairs_added_to_training(self, world, fast_config):
        pipeline = TRMPipeline(world, fast_config)
        generator = BehaviorLogGenerator(world, BehaviorConfig(seed=7))
        events = generator.generate_week(0)
        e_co = pipeline.build_cooccurrence(events)
        candidate = pipeline.build_candidate(e_co)
        feedback = np.array([[0, 1], [2, 3]])
        _, split = pipeline.train_ranking(candidate, feedback_pairs=feedback)
        keys = {tuple(p) for p in split.train_pos}
        assert (0, 1) in keys and (2, 3) in keys
