"""Linear-chain CRF: exact partition, Viterbi, training behaviour."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import logsumexp as scipy_lse

from repro.errors import ShapeError
from repro.nn import LinearChainCRF
from repro.tensor import Adam, Tensor


def brute_force_scores(crf: LinearChainCRF, emissions: np.ndarray) -> dict[tuple, float]:
    """Score of every tag path for a single (T, K) emission matrix."""
    T, K = emissions.shape
    trans = crf.transitions.data
    start = crf.start_scores.data
    end = crf.end_scores.data
    scores = {}
    for path in itertools.product(range(K), repeat=T):
        s = start[path[0]] + end[path[-1]]
        s += sum(emissions[t, path[t]] for t in range(T))
        s += sum(trans[path[t - 1], path[t]] for t in range(1, T))
        scores[path] = s
    return scores


def random_crf(rng: np.random.Generator, num_tags: int) -> LinearChainCRF:
    crf = LinearChainCRF(num_tags)
    crf.transitions.data[...] = rng.normal(size=(num_tags, num_tags))
    crf.start_scores.data[...] = rng.normal(size=num_tags)
    crf.end_scores.data[...] = rng.normal(size=num_tags)
    return crf


class TestExactness:
    @given(st.integers(2, 4), st.integers(2, 4), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_partition_matches_enumeration(self, T, K, seed):
        rng = np.random.default_rng(seed)
        crf = random_crf(rng, K)
        emissions = rng.normal(size=(1, T, K))
        scores = brute_force_scores(crf, emissions[0])
        expected = scipy_lse(list(scores.values()))
        actual = crf._partition(Tensor(emissions), np.ones((1, T), bool)).data[0]
        assert abs(actual - expected) < 1e-9

    @given(st.integers(2, 4), st.integers(2, 4), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_viterbi_matches_argmax_enumeration(self, T, K, seed):
        rng = np.random.default_rng(seed)
        crf = random_crf(rng, K)
        emissions = rng.normal(size=(1, T, K))
        scores = brute_force_scores(crf, emissions[0])
        best = max(scores, key=scores.get)
        decoded = crf.decode(emissions, np.ones((1, T), bool))[0]
        assert tuple(decoded) == best

    def test_gold_score_consistency(self, rng):
        crf = random_crf(rng, 3)
        emissions = rng.normal(size=(1, 4, 3))
        tags = np.array([[0, 2, 1, 1]])
        mask = np.ones((1, 4), bool)
        gold = crf._sequence_score(Tensor(emissions), tags, mask).data[0]
        expected = brute_force_scores(crf, emissions[0])[(0, 2, 1, 1)]
        assert abs(gold - expected) < 1e-10

    def test_nll_is_positive_probability(self, rng):
        crf = random_crf(rng, 3)
        emissions = Tensor(rng.normal(size=(2, 5, 3)))
        tags = rng.integers(0, 3, size=(2, 5))
        nll = crf.neg_log_likelihood(emissions, tags)
        assert float(nll.data) > 0  # -log p, p < 1


class TestMasking:
    def test_masked_suffix_matches_shorter_sequence(self, rng):
        crf = random_crf(rng, 3)
        emissions = rng.normal(size=(1, 5, 3))
        tags = rng.integers(0, 3, size=(1, 5))
        mask = np.array([[True, True, True, False, False]])
        nll_masked = crf.neg_log_likelihood(Tensor(emissions), tags, mask)
        nll_short = crf.neg_log_likelihood(
            Tensor(emissions[:, :3]), tags[:, :3], np.ones((1, 3), bool)
        )
        assert abs(float(nll_masked.data) - float(nll_short.data)) < 1e-10

    def test_decode_respects_mask_length(self, rng):
        crf = random_crf(rng, 3)
        emissions = rng.normal(size=(2, 6, 3))
        mask = np.array([[True] * 6, [True] * 2 + [False] * 4])
        paths = crf.decode(emissions, mask)
        assert len(paths[0]) == 6
        assert len(paths[1]) == 2

    def test_invalid_first_token_mask_raises(self, rng):
        crf = random_crf(rng, 3)
        with pytest.raises(ShapeError):
            crf.neg_log_likelihood(
                Tensor(rng.normal(size=(1, 3, 3))),
                np.zeros((1, 3), dtype=int),
                np.array([[False, True, True]]),
            )

    def test_wrong_tag_count_raises(self, rng):
        crf = LinearChainCRF(4)
        with pytest.raises(ShapeError):
            crf.neg_log_likelihood(Tensor(rng.normal(size=(1, 3, 5))), np.zeros((1, 3), int))

    def test_decode_requires_3d(self):
        crf = LinearChainCRF(3)
        with pytest.raises(ShapeError):
            crf.decode(np.zeros((3, 3)))


class TestLearning:
    def test_training_recovers_transition_structure(self, rng):
        # Data generated with a strict tag alternation 0 -> 1 -> 0 ...
        crf = LinearChainCRF(2)
        emission_param = Tensor(np.zeros((2, 2)), requires_grad=True)
        tags = np.array([[i % 2 for i in range(6)]] * 8)
        emissions_base = rng.normal(size=(8, 6, 2)) * 0.1
        opt = Adam(crf.parameters() + [emission_param], lr=0.1)
        first = None
        for step in range(60):
            opt.zero_grad()
            emissions = Tensor(emissions_base) + emission_param.reshape(1, 1, 2, 2).sum(axis=3)
            loss = crf.neg_log_likelihood(emissions, tags)
            if first is None:
                first = float(loss.data)
            loss.backward()
            opt.step()
        assert float(loss.data) < first * 0.5
        trans = crf.transitions.data
        assert trans[0, 1] > trans[0, 0]
        assert trans[1, 0] > trans[1, 1]
