"""Poincaré embeddings (the paper's hyperbolic future-work direction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, NotFittedError
from repro.gnn import PoincareConfig, PoincareEmbedding, poincare_distance, project_to_ball
from repro.graph import EntityGraph


def tree_graph(branching: int = 4, leaves_per_child: int = 3) -> EntityGraph:
    pairs = [(0, c) for c in range(1, branching + 1)]
    next_id = branching + 1
    for child in range(1, branching + 1):
        for _ in range(leaves_per_child):
            pairs.append((child, next_id))
            next_id += 1
    return EntityGraph.from_edge_list(next_id, pairs)


class TestGeometry:
    def test_distance_symmetric_and_zero_on_self(self, rng):
        u = rng.uniform(-0.4, 0.4, size=5)
        v = rng.uniform(-0.4, 0.4, size=5)
        assert poincare_distance(u, v) == pytest.approx(poincare_distance(v, u))
        assert poincare_distance(u, u) == pytest.approx(0.0, abs=1e-3)

    def test_distance_grows_near_boundary(self):
        origin = np.zeros(2)
        near = np.array([0.5, 0.0])
        far = np.array([0.99, 0.0])
        assert poincare_distance(origin, far) > poincare_distance(origin, near) * 2

    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_triangle_inequality(self, seed):
        rng = np.random.default_rng(seed)
        a, b, c = rng.uniform(-0.7, 0.7, size=(3, 3))
        ab = poincare_distance(a, b)
        bc = poincare_distance(b, c)
        ac = poincare_distance(a, c)
        assert ac <= ab + bc + 1e-9

    def test_projection_keeps_points_inside(self, rng):
        x = rng.normal(size=(10, 4)) * 5
        projected = project_to_ball(x)
        assert (np.linalg.norm(projected, axis=1) < 1.0).all()

    def test_projection_noop_inside(self, rng):
        x = rng.uniform(-0.3, 0.3, size=(5, 4))
        np.testing.assert_allclose(project_to_ball(x), x)


class TestTraining:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PoincareConfig(dim=1).validate()
        with pytest.raises(ConfigError):
            PoincareConfig(epochs=0).validate()

    def test_not_fitted_guard(self):
        emb = PoincareEmbedding(5)
        with pytest.raises(NotFittedError):
            emb.distance(0, 1)

    def test_empty_graph_rejected(self):
        emb = PoincareEmbedding(5, PoincareConfig(epochs=1))
        with pytest.raises(ConfigError):
            emb.fit(EntityGraph.from_edge_list(5, []))

    def test_node_count_mismatch(self):
        emb = PoincareEmbedding(5, PoincareConfig(epochs=1))
        with pytest.raises(ConfigError):
            emb.fit(EntityGraph.from_edge_list(6, [(0, 1)]))

    def test_reconstruction_beats_chance_on_tree(self):
        graph = tree_graph()
        emb = PoincareEmbedding(graph.num_nodes, PoincareConfig(dim=4, epochs=40, seed=0))
        emb.fit(graph)
        assert emb.reconstruction_auc(graph, rng=1) > 0.75

    def test_root_embeds_near_origin(self):
        graph = tree_graph()
        emb = PoincareEmbedding(graph.num_nodes, PoincareConfig(dim=4, epochs=40, seed=0))
        emb.fit(graph)
        norms = emb.norms()
        # The hub (root) sits closer to the origin than the leaves.
        assert norms[0] < norms[5:].mean() - 0.2

    def test_all_points_stay_in_ball(self):
        graph = tree_graph()
        emb = PoincareEmbedding(graph.num_nodes, PoincareConfig(dim=3, epochs=15, seed=0))
        emb.fit(graph)
        assert (emb.norms() < 1.0).all()

    def test_pairwise_distances_shape(self):
        graph = tree_graph()
        emb = PoincareEmbedding(graph.num_nodes, PoincareConfig(dim=3, epochs=5, seed=0))
        emb.fit(graph)
        pairs = np.array([[0, 1], [1, 2]])
        assert emb.pairwise_distances(pairs).shape == (2,)
