"""ALPC loss terms."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.tensor import Tensor
from repro.trmp import (
    anchor_negative_mask,
    info_nce_loss,
    prediction_loss,
    threshold_loss,
    total_loss,
)

from helpers import assert_gradcheck


class TestPredictionLoss:
    def test_matches_bce(self, rng):
        logits = rng.normal(size=8)
        labels = (rng.random(8) < 0.5).astype(float)
        p = 1 / (1 + np.exp(-logits))
        expected = -(labels * np.log(p) + (1 - labels) * np.log(1 - p)).mean()
        assert float(prediction_loss(Tensor(logits), labels).data) == pytest.approx(expected)


class TestThresholdLoss:
    def test_margin_direction(self):
        logits = Tensor(np.array([2.0, 2.0]))
        labels = np.array([1.0, 0.0])
        low = Tensor(np.array([0.0, 0.0]))
        high = Tensor(np.array([4.0, 4.0]))
        # For the positive pair a low threshold is better; for the negative
        # pair a high threshold is better.
        loss_low = float(threshold_loss(logits, low, labels).data)
        loss_high = float(threshold_loss(logits, high, labels).data)
        pos_only = np.array([1.0, 1.0])
        assert float(threshold_loss(logits, low, pos_only).data) < float(
            threshold_loss(logits, high, pos_only).data
        )
        neg_only = np.array([0.0, 0.0])
        assert float(threshold_loss(logits, high, neg_only).data) < float(
            threshold_loss(logits, low, neg_only).data
        )

    def test_gradcheck_through_thresholds(self, rng):
        logits = rng.normal(size=5)
        labels = (rng.random(5) < 0.5).astype(float)
        assert_gradcheck(
            lambda eps: threshold_loss(Tensor(logits), eps, labels), rng.normal(size=5)
        )


class TestInfoNCE:
    def test_temperature_validation(self, rng):
        emb = Tensor(rng.normal(size=(6, 4)))
        anchors = np.array([[0, 1], [2, 3]])
        with pytest.raises(ConfigError):
            info_nce_loss(emb, anchors, temperature=0.0)

    def test_aligned_anchors_low_loss(self, rng):
        # Embeddings where anchor pairs are identical and others orthogonal.
        base = np.eye(4)
        emb = Tensor(np.concatenate([base, base], axis=0))  # i and i+4 identical
        anchors = np.array([[0, 4], [1, 5], [2, 6], [3, 7]])
        aligned = float(info_nce_loss(emb, anchors, temperature=0.2).data)
        shuffled = np.array([[0, 5], [1, 6], [2, 7], [3, 4]])
        misaligned = float(info_nce_loss(emb, shuffled, temperature=0.2).data)
        assert aligned < misaligned

    def test_gradcheck(self, rng):
        anchors = np.array([[0, 1], [2, 3], [4, 5]])
        assert_gradcheck(
            lambda x: info_nce_loss(x, anchors, temperature=0.5), rng.normal(size=(6, 4))
        )

    def test_negative_mask_excludes_false_negatives(self, rng):
        emb = Tensor(rng.normal(size=(6, 4)))
        anchors = np.array([[0, 1], [2, 3]])
        # Mask that forbids using pair 1's positive as pair 0's negative.
        mask = np.array([[True, False], [True, True]])
        masked = float(info_nce_loss(emb, anchors, 0.2, mask).data)
        # With only the diagonal left for row 0 its log-prob is 0.
        full = float(info_nce_loss(emb, anchors, 0.2).data)
        assert masked <= full + 1e-9

    def test_anchor_negative_mask_structure(self):
        anchors = np.array([[0, 1], [2, 3], [4, 0]])
        edges = {(0, 3)}  # anchor 0 relates to entity 3 (pair 1's positive)
        mask = anchor_negative_mask(anchors, edges)
        assert not mask[0, 1]  # (0,3) is an edge → forbidden negative
        assert not mask[0, 2]  # partner of row 2 is entity 0 == anchor 0
        assert mask[1, 0] and mask[2, 0]


class TestTotalLoss:
    def test_weighted_sum(self):
        pred, th, cl = Tensor(1.0), Tensor(2.0), Tensor(3.0)
        assert float(total_loss(pred, th, cl, alpha=0.5, beta=2.0).data) == pytest.approx(8.0)

    def test_defaults_alpha_beta_one(self):
        pred, th, cl = Tensor(1.0), Tensor(1.0), Tensor(1.0)
        assert float(total_loss(pred, th, cl).data) == pytest.approx(3.0)
