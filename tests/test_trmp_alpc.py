"""ALPC model and trainer."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotFittedError
from repro.eval import roc_auc
from repro.tensor import Tensor
from repro.trmp import ALPCConfig, ALPCLinkPredictor, ALPCModel


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ALPCConfig(hidden_dim=0).validate()
        with pytest.raises(ConfigError):
            ALPCConfig(alpha=-1).validate()
        with pytest.raises(ConfigError):
            ALPCConfig(temperature=0).validate()
        ALPCConfig().validate()


class TestModel:
    def test_forward_pieces(self, rng):
        config = ALPCConfig(hidden_dim=8, num_layers=1)
        model = ALPCModel(6, config)
        x = Tensor(rng.normal(size=(10, 6)))
        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 0, 3, 2])
        z = model.encode(x, src, dst, 10)
        assert z.shape == (10, 8)
        pairs = np.array([[0, 1], [2, 3]])
        scores = model.score_pairs(z, pairs)
        assert scores.shape == (2,)
        eps = model.thresholds(z, pairs[:, 0])
        assert eps.shape == (2,)
        proj = model.contrastive_projection(z)
        assert proj.shape == (10, 4)


class TestTrainer:
    def test_not_fitted_guards(self):
        model = ALPCLinkPredictor()
        with pytest.raises(NotFittedError):
            model.predict_pairs(np.array([[0, 1]]))
        with pytest.raises(NotFittedError):
            _ = model.node_embeddings

    def test_training_beats_chance(self, trained_alpc, split):
        pairs, labels = split.test_pairs_and_labels()
        auc = roc_auc(labels, trained_alpc.predict_pairs(pairs))
        assert auc > 0.75

    def test_losses_recorded(self, trained_alpc):
        report = trained_alpc.report
        assert len(report.losses) > 0
        assert len(report.pred_losses) == len(report.losses)
        assert np.mean(report.losses[-3:]) < np.mean(report.losses[:3])

    def test_predict_pairs_are_probabilities(self, trained_alpc, split):
        scores = trained_alpc.predict_pairs(split.test_pos[:50])
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_margins_consistent_with_thresholds(self, trained_alpc, split):
        pairs = split.test_pos[:20]
        margins = trained_alpc.predict_margins(pairs)
        raw = trained_alpc.raw_scores(pairs)
        eps = trained_alpc.node_thresholds[pairs[:, 0]]
        np.testing.assert_allclose(margins, raw - eps, atol=1e-10)

    def test_accept_pairs_two_sided(self, trained_alpc, split):
        pairs = split.test_pos[:40]
        accepted = trained_alpc.accept_pairs(pairs)
        forward = trained_alpc.predict_margins(pairs) > 0
        backward = trained_alpc.predict_margins(pairs[:, ::-1]) > 0
        np.testing.assert_array_equal(accepted, forward & backward)

    def test_acceptance_enriches_true_relations(self, trained_alpc, split, world):
        pairs, labels = split.test_pairs_and_labels()
        accepted = trained_alpc.accept_pairs(pairs)
        # Acceptance rate among positives must exceed that among negatives.
        pos_rate = accepted[labels == 1].mean()
        neg_rate = accepted[labels == 0].mean()
        assert pos_rate > neg_rate + 0.3

    def test_node_embeddings_shape(self, trained_alpc, candidate):
        assert trained_alpc.node_embeddings.shape[0] == candidate.graph.num_nodes
        assert trained_alpc.node_thresholds.shape[0] == candidate.graph.num_nodes


class TestAblationsTrain:
    @pytest.mark.parametrize("alpha,beta", [(0.0, 1.0), (1.0, 0.0), (0.0, 0.0)])
    def test_ablations_run(self, split, candidate, e_semantic, alpha, beta):
        config = ALPCConfig(epochs=3, alpha=alpha, beta=beta, seed=0)
        model = ALPCLinkPredictor(config).fit(split, candidate.node_features, e_semantic)
        scores = model.predict_pairs(split.test_pos[:10])
        assert np.isfinite(scores).all()
