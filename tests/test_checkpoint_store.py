"""CheckpointStore: digest-proved resume state, atomic on disk."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.resilience import CheckpointStore, FaultInjector, InjectedFault


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    root = None if request.param == "memory" else tmp_path / "ckpt"
    return CheckpointStore(root=root)


def test_put_get_roundtrip(store):
    payload = {"arr": np.arange(6).reshape(2, 3), "note": "stage output"}
    digest = store.put("run-1", "cooccurrence", payload)
    assert len(digest) == 64
    loaded = store.get("run-1", "cooccurrence")
    np.testing.assert_array_equal(loaded["arr"], payload["arr"])
    assert loaded["note"] == "stage output"
    assert store.has("run-1", "cooccurrence")
    assert store.digest("run-1", "cooccurrence") == digest


def test_identical_payloads_share_a_digest(store):
    d1 = store.put("run-1", "s", {"x": np.ones(4)})
    d2 = store.put("run-2", "s", {"x": np.ones(4)})
    assert d1 == d2  # the idempotency proof the chaos suite relies on


def test_missing_stage_raises(store):
    with pytest.raises(CheckpointError):
        store.get("run-1", "nope")


def test_completed_stages_preserve_order(store):
    for stage in ("cooccurrence", "candidates", "ranked"):
        store.put("run-1", stage, stage)
    assert store.completed_stages("run-1") == ["cooccurrence", "candidates", "ranked"]
    assert store.runs() == ["run-1"]


def test_clear_run_drops_everything(store):
    store.put("run-1", "s", 1)
    store.clear_run("run-1")
    assert not store.has("run-1", "s")
    assert store.runs() == []


def test_disk_store_survives_process_restart(tmp_path):
    root = tmp_path / "ckpt"
    first = CheckpointStore(root=root)
    digest = first.put("weekly-0000", "cooccurrence", np.arange(10))

    reopened = CheckpointStore(root=root)  # a fresh "process"
    assert reopened.completed_stages("weekly-0000") == ["cooccurrence"]
    assert reopened.digest("weekly-0000", "cooccurrence") == digest
    np.testing.assert_array_equal(
        reopened.get("weekly-0000", "cooccurrence"), np.arange(10)
    )


def test_truncated_checkpoint_fails_digest_proof(tmp_path):
    root = tmp_path / "ckpt"
    store = CheckpointStore(root=root)
    store.put("run-1", "ranked", np.arange(100))
    path = root / "run-1" / "ranked.ckpt"
    path.write_bytes(path.read_bytes()[:-10])  # torn write

    reopened = CheckpointStore(root=root)
    with pytest.raises(CheckpointError, match="digest mismatch"):
        reopened.get("run-1", "ranked")


def test_flipped_byte_fails_digest_proof(tmp_path):
    root = tmp_path / "ckpt"
    store = CheckpointStore(root=root)
    store.put("run-1", "s", b"payload bytes")
    path = root / "run-1" / "s.ckpt"
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(CheckpointError, match="digest mismatch"):
        store.get("run-1", "s")


def test_deleted_checkpoint_file_raises_cleanly(tmp_path):
    root = tmp_path / "ckpt"
    store = CheckpointStore(root=root)
    store.put("run-1", "s", 1)
    (root / "run-1" / "s.ckpt").unlink()
    with pytest.raises(CheckpointError, match="unreadable"):
        store.get("run-1", "s")


def test_torn_manifest_means_run_is_recomputed(tmp_path):
    root = tmp_path / "ckpt"
    store = CheckpointStore(root=root)
    store.put("run-1", "s", 1)
    (root / "run-1" / "manifest.json").write_text("{not json", encoding="utf-8")

    reopened = CheckpointStore(root=root)  # must not crash on startup
    assert reopened.runs() == []
    assert not reopened.has("run-1", "s")


def test_fault_seams_fire_on_write_and_read():
    faults = FaultInjector()
    store = CheckpointStore(faults=faults)
    faults.fail_next("checkpoint.write", 1, exception=InjectedFault)
    with pytest.raises(InjectedFault):
        store.put("run-1", "s", 1)
    store.put("run-1", "s", 1)  # second attempt (a retry) succeeds

    faults.fail_next("checkpoint.read", 1, exception=InjectedFault)
    with pytest.raises(InjectedFault):
        store.get("run-1", "s")
    assert store.get("run-1", "s") == 1


def test_counters_track_io(store):
    store.put("run-1", "a", 1)
    store.put("run-1", "b", 2)
    store.get("run-1", "a")
    assert store.writes == 2
    assert store.loads == 1
