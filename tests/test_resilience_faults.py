"""FaultInjector: seeded schedules are reproducible, latency respects the
manual clock, and no state leaks between injector instances."""

from __future__ import annotations

import pytest

from repro.errors import ReproError, StorageError
from repro.obs import ManualClock
from repro.resilience import FaultInjector, InjectedCrash, InjectedFault


def drive(injector: FaultInjector, seam: str, calls: int) -> list[int]:
    """Run ``calls`` checks; return the 1-based call numbers that failed."""
    failed = []
    for n in range(1, calls + 1):
        try:
            injector.check(seam)
        except (InjectedFault, InjectedCrash):
            failed.append(n)
    return failed


def test_unconfigured_seam_is_a_no_op():
    injector = FaultInjector(seed=1)
    injector.check("registry.write")
    assert injector.calls("registry.write") == 1
    assert injector.failures("registry.write") == 0


def test_error_rate_schedule_is_seed_reproducible():
    outcomes = []
    for _ in range(2):
        injector = FaultInjector(seed=7)
        injector.configure("registry.write", error_rate=0.3)
        outcomes.append(drive(injector, "registry.write", 100))
    assert outcomes[0] == outcomes[1]
    assert 10 <= len(outcomes[0]) <= 50  # ~30 failures out of 100

    different = FaultInjector(seed=8)
    different.configure("registry.write", error_rate=0.3)
    assert drive(different, "registry.write", 100) != outcomes[0]


def test_fail_at_fires_on_exact_call_numbers():
    injector = FaultInjector()
    injector.fail_at("pipeline.ranked", 2, 5, exception=InjectedCrash)
    assert drive(injector, "pipeline.ranked", 6) == [2, 5]


def test_fail_next_is_relative_to_the_current_count():
    injector = FaultInjector()
    injector.check("store.read")  # call #1 passes
    injector.fail_next("store.read", count=2)
    assert drive(injector, "store.read", 3) == [1, 2]  # calls #2 and #3 fail


def test_max_failures_caps_rate_driven_errors():
    injector = FaultInjector(seed=3)
    injector.configure("seam", error_rate=1.0, max_failures=2)
    assert drive(injector, "seam", 10) == [1, 2]
    assert injector.failures("seam") == 2


def test_latency_advances_the_manual_clock_only():
    clock = ManualClock()
    injector = FaultInjector(seed=0, clock=clock)
    injector.configure("preferences.read", latency=0.25)
    for _ in range(4):
        injector.check("preferences.read")
    assert clock.perf() == pytest.approx(1.0)  # 4 x 250 ms, zero real time


def test_latency_rate_is_seeded():
    def measure(seed: int) -> float:
        clock = ManualClock()
        injector = FaultInjector(seed=seed, clock=clock)
        injector.configure("seam", latency=0.1, latency_rate=0.5)
        for _ in range(50):
            injector.check("seam")
        return clock.perf()

    assert measure(5) == measure(5)
    assert 0.0 < measure(5) < 5.0


def test_exception_taxonomy():
    # InjectedFault is transient storage-shaped (retryable by default);
    # InjectedCrash is a process kill no retry policy may resurrect.
    assert issubclass(InjectedFault, StorageError)
    assert issubclass(InjectedCrash, ReproError)
    assert not issubclass(InjectedCrash, StorageError)


def test_instances_share_no_state():
    a = FaultInjector(seed=1)
    a.configure("seam", error_rate=1.0)
    with pytest.raises(InjectedFault):
        a.check("seam")

    b = FaultInjector(seed=1)
    b.check("seam")  # unconfigured in the fresh injector — passes
    assert b.calls("seam") == 1
    assert b.failures("seam") == 0
    assert a.failures("seam") == 1  # and b's call did not touch a


def test_clear_drops_schedules_but_keeps_counters():
    injector = FaultInjector()
    injector.configure("seam", error_rate=1.0)
    with pytest.raises(InjectedFault):
        injector.check("seam")
    injector.clear("seam")
    injector.check("seam")  # passes now
    assert injector.calls("seam") == 2


def test_snapshot_reports_every_touched_seam():
    injector = FaultInjector()
    injector.configure("a", error_rate=1.0, max_failures=1)
    drive(injector, "a", 2)
    injector.check("b")
    snap = injector.snapshot()
    assert snap["a"] == {"calls": 2, "failures": 1, "configured": True}
    assert snap["b"] == {"calls": 1, "failures": 0, "configured": False}


def test_invalid_configuration_rejected():
    injector = FaultInjector()
    with pytest.raises(ValueError):
        injector.configure("seam", error_rate=1.5)
    with pytest.raises(ValueError):
        injector.configure("seam", latency=-1.0)
