"""Calibration diagnostics."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.eval import reliability_report


class TestReliability:
    def test_perfectly_calibrated(self, rng):
        probs = rng.random(20_000)
        labels = (rng.random(20_000) < probs).astype(float)
        report = reliability_report(labels, probs)
        assert report.ece < 0.02
        for b in report.bins:
            assert abs(b.mean_confidence - b.empirical_accuracy) < 0.05

    def test_overconfident_model_flagged(self, rng):
        # Predicts 0.95 but is right only half the time.
        probs = np.full(5000, 0.95)
        labels = (rng.random(5000) < 0.5).astype(float)
        report = reliability_report(labels, probs)
        assert report.ece > 0.3

    def test_brier_zero_for_perfect_predictions(self):
        labels = np.array([1.0, 0.0, 1.0])
        report = reliability_report(labels, labels)
        assert report.brier == 0.0
        assert report.ece == 0.0

    def test_bin_edges_cover_unit_interval(self, rng):
        probs = rng.random(1000)
        labels = rng.integers(0, 2, 1000).astype(float)
        report = reliability_report(labels, probs, num_bins=5)
        assert report.bins[0].lower == 0.0
        assert report.bins[-1].upper == 1.0
        assert sum(b.count for b in report.bins) == 1000

    def test_validation(self):
        with pytest.raises(ConfigError):
            reliability_report(np.ones(3), np.ones(4))
        with pytest.raises(ConfigError):
            reliability_report(np.ones(3), np.array([0.1, 0.2, 1.5]))
        with pytest.raises(ConfigError):
            reliability_report(np.ones(3), np.ones(3), num_bins=1)

    def test_to_text_renders(self, rng):
        probs = rng.random(100)
        labels = rng.integers(0, 2, 100).astype(float)
        text = reliability_report(labels, probs).to_text()
        assert "ECE" in text and "Brier" in text


class TestOnALPC:
    def test_alpc_probabilities_roughly_calibrated(self, trained_alpc, split):
        pairs, labels = split.test_pairs_and_labels()
        probs = trained_alpc.predict_pairs(pairs)
        report = reliability_report(labels, probs, num_bins=5)
        # Trained link probabilities should be informative, not wildly off.
        assert report.ece < 0.35
        assert report.brier < 0.25
