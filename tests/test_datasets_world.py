"""Synthetic world generation."""

import numpy as np
import pytest

from repro.datasets import NUM_ENTITY_TYPES, World, WorldConfig
from repro.errors import ConfigError


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            World(WorldConfig(num_topics=1))
        with pytest.raises(ConfigError):
            World(WorldConfig(num_topics=99))
        with pytest.raises(ConfigError):
            World(WorldConfig(num_entities=2, num_topics=12))
        with pytest.raises(ConfigError):
            World(WorldConfig(num_users=0))


class TestStructure:
    def test_sizes(self, world):
        assert len(world.entities) == world.num_entities
        assert world.entity_topics.shape == (world.num_entities, world.num_topics)
        assert world.user_interests.shape == (world.num_users, world.num_topics)

    def test_mixtures_are_distributions(self, world):
        np.testing.assert_allclose(world.entity_topics.sum(axis=1), 1.0)
        np.testing.assert_allclose(world.user_interests.sum(axis=1), 1.0)
        assert (world.entity_topics >= 0).all()

    def test_entity_names_unique(self, world):
        names = [e.name for e in world.entities]
        assert len(set(names)) == len(names)

    def test_names_do_not_collide_with_topic_words(self, world):
        topic_words = {w for bank in world.topic_words for w in bank}
        for e in world.entities:
            assert e.name.lower() not in topic_words

    def test_types_in_range(self, world):
        for e in world.entities:
            assert 0 <= e.type_id < NUM_ENTITY_TYPES

    def test_every_topic_has_entities(self, world):
        topics = {e.primary_topic for e in world.entities}
        assert topics == set(range(world.num_topics))

    def test_popularity_is_distribution(self, world):
        assert world.popularity.sum() == pytest.approx(1.0)
        assert (world.popularity > 0).all()

    def test_primary_topic_dominates_mixture(self, world):
        dominant = np.argmax(world.entity_topics, axis=1)
        agree = np.mean([dominant[e.entity_id] == e.primary_topic for e in world.entities])
        assert agree > 0.95

    def test_deterministic_given_seed(self):
        a = World(WorldConfig(num_entities=50, num_users=20, seed=9))
        b = World(WorldConfig(num_entities=50, num_users=20, seed=9))
        np.testing.assert_allclose(a.entity_topics, b.entity_topics)
        assert [e.name for e in a.entities] == [e.name for e in b.entities]


class TestGroundTruth:
    def test_relatedness_bounds_and_symmetry(self, world):
        r01 = world.relatedness(0, 1)
        assert 0 <= r01 <= 1 + 1e-12
        assert r01 == pytest.approx(world.relatedness(1, 0))
        assert world.relatedness(5, 5) == pytest.approx(1.0)

    def test_relatedness_matrix_matches_pairwise(self, world):
        matrix = world.relatedness_matrix()
        assert matrix[3, 7] == pytest.approx(world.relatedness(3, 7))
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_ground_truth_graph_thresholding(self, world):
        strict = world.ground_truth_graph(0.9)
        loose = world.ground_truth_graph(0.5)
        assert strict.num_edges < loose.num_edges
        lo, hi = strict.canonical_pairs()
        for u, v in zip(lo[:50], hi[:50]):
            assert world.relatedness(int(u), int(v)) >= 0.9

    def test_same_topic_pairs_more_related(self, world):
        same = [
            world.relatedness(a.entity_id, b.entity_id)
            for a in world.entities[:30]
            for b in world.entities[:30]
            if a.entity_id < b.entity_id and a.primary_topic == b.primary_topic
        ]
        cross = [
            world.relatedness(a.entity_id, b.entity_id)
            for a in world.entities[:30]
            for b in world.entities[:30]
            if a.entity_id < b.entity_id and a.primary_topic != b.primary_topic
        ]
        assert np.mean(same) > np.mean(cross) + 0.3

    def test_affinity_shape(self, world):
        aff = world.user_entity_affinity()
        assert aff.shape == (world.num_users, world.num_entities)
        assert (aff >= 0).all()


class TestTextHelpers:
    def test_description_contains_name(self, world, rng):
        desc = world.entity_description(0, rng)
        assert world.entities[0].name.lower() in desc

    def test_description_words_track_mixture(self, world, rng):
        entity = world.entities[0]
        topic_hits = 0
        total = 0
        for _ in range(30):
            for word in world.entity_description(entity.entity_id, rng, length=6).split():
                topic = world.topic_of_word(word)
                if topic is not None:
                    total += 1
                    topic_hits += topic == entity.primary_topic
        assert topic_hits / total > 0.5

    def test_entity_by_name(self, world):
        entity = world.entities[3]
        assert world.entity_by_name(entity.name).entity_id == 3
        with pytest.raises(ConfigError):
            world.entity_by_name("definitely-not-a-name")
