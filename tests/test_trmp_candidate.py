"""TRMP Stage I: candidate generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import RELATION_BOTH, RELATION_COOCCURRENCE, RELATION_SEMANTIC
from repro.trmp import CandidateGenerationConfig, CandidateGenerator, popularity_sampling_pairs


def cluster_vectors(rng, clusters=3, per_cluster=10, dim=8, spread=0.1):
    centers = rng.normal(size=(clusters, dim)) * 3
    points = np.concatenate(
        [c + rng.normal(size=(per_cluster, dim)) * spread for c in centers]
    )
    return points


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CandidateGenerationConfig(top_k_cooccurrence=0).validate()
        with pytest.raises(ConfigError):
            CandidateGenerationConfig(min_cooccurrence_count=-1).validate()


class TestGeneration:
    def test_mismatched_matrices_raise(self, rng):
        gen = CandidateGenerator()
        with pytest.raises(ConfigError):
            gen.generate(rng.normal(size=(5, 4)), rng.normal(size=(6, 4)))

    def test_edges_connect_clusters_internally(self, rng):
        vectors = cluster_vectors(rng)
        config = CandidateGenerationConfig(
            top_k_cooccurrence=3, top_k_semantic=3, min_cooccurrence_sim=0.5, min_semantic_sim=0.5
        )
        result = CandidateGenerator(config).generate(vectors, vectors)
        lo, hi = result.graph.canonical_pairs()
        same_cluster = (lo // 10) == (hi // 10)
        assert same_cluster.mean() > 0.9

    def test_relation_provenance_labels(self, rng):
        co = cluster_vectors(rng, clusters=2, per_cluster=5)
        se = cluster_vectors(np.random.default_rng(99), clusters=2, per_cluster=5)
        config = CandidateGenerationConfig(
            top_k_cooccurrence=2, top_k_semantic=2, min_cooccurrence_sim=0.0, min_semantic_sim=-1.0
        )
        result = CandidateGenerator(config).generate(co, se)
        labels = set(result.graph.relation.tolist())
        assert labels <= {RELATION_COOCCURRENCE, RELATION_SEMANTIC, RELATION_BOTH}
        # With identical embeddings every edge would be BOTH; with
        # independent ones we expect a mix of sources.
        assert len(labels) >= 2

    def test_identical_channels_give_both(self, rng):
        vectors = cluster_vectors(rng)
        config = CandidateGenerationConfig(
            top_k_cooccurrence=3, top_k_semantic=3, min_cooccurrence_sim=0.0, min_semantic_sim=0.0
        )
        result = CandidateGenerator(config).generate(vectors, vectors)
        assert (result.graph.relation == RELATION_BOTH).all()

    def test_weights_in_unit_interval(self, candidate):
        assert (candidate.graph.weight > 0).all()
        assert (candidate.graph.weight <= 1).all()

    def test_node_features_concatenation(self, candidate):
        features = candidate.node_features
        n, d = candidate.e_semantic.shape
        np.testing.assert_allclose(features[:, :d], candidate.e_semantic)
        np.testing.assert_allclose(features[:, d:], candidate.e_cooccurrence)

    def test_count_gating_drops_tail_entities(self, rng):
        vectors = cluster_vectors(rng)
        counts = np.full(len(vectors), 100.0)
        counts[0] = 0  # a tail entity with no behavioural evidence
        config = CandidateGenerationConfig(
            top_k_cooccurrence=3,
            top_k_semantic=3,
            min_cooccurrence_sim=0.0,
            min_semantic_sim=2.0,  # disable the semantic channel
            min_cooccurrence_count=5,
        )
        result = CandidateGenerator(config).generate(vectors, vectors, cooccurrence_counts=counts)
        nbrs, _ = result.graph.neighbors(0)
        assert len(nbrs) == 0

    def test_count_gating_shape_validation(self, rng):
        vectors = cluster_vectors(rng)
        gen = CandidateGenerator()
        with pytest.raises(ConfigError):
            gen.generate(vectors, vectors, cooccurrence_counts=np.ones(3))


class TestPopularitySampling:
    def test_pairs_unique_and_valid(self, rng):
        popularity = rng.random(30) + 0.01
        pairs = popularity_sampling_pairs(popularity, 40, rng=0)
        assert len(pairs) == 40
        assert len({tuple(p) for p in pairs}) == 40
        assert (pairs[:, 0] < pairs[:, 1]).all()

    def test_popular_entities_overrepresented(self):
        popularity = np.ones(100)
        popularity[:5] = 100.0
        pairs = popularity_sampling_pairs(popularity, 200, rng=0)
        share = np.mean([(u < 5) or (v < 5) for u, v in pairs])
        assert share > 0.5
