"""Event / Entity Dict serialisation."""

import pytest

from repro.datasets import load_entity_dict, load_events, save_entity_dict, save_events
from repro.errors import ConfigError
from repro.text import EntityDict, EntityEntry


class TestEvents:
    def test_round_trip(self, events, tmp_path):
        path = tmp_path / "events.jsonl"
        n = save_events(events[:50], path)
        assert n == 50
        loaded = load_events(path)
        assert loaded == events[:50]

    def test_mentions_preserved(self, events, tmp_path):
        path = tmp_path / "events.jsonl"
        save_events(events[:10], path)
        loaded = load_events(path)
        for original, restored in zip(events[:10], loaded):
            assert original.mentions == restored.mentions

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_events(tmp_path / "nope.jsonl")

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"user_id": 1}\nnot json\n')
        with pytest.raises(ConfigError):
            load_events(path)

    def test_malformed_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"user_id": 1, "day": 2}\n')
        with pytest.raises(ConfigError):
            load_events(path)

    def test_blank_lines_skipped(self, events, tmp_path):
        path = tmp_path / "events.jsonl"
        save_events(events[:3], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_events(path)) == 3


class TestEntityDict:
    def test_round_trip(self, entity_dict, tmp_path):
        path = tmp_path / "dict.tsv"
        n = save_entity_dict(entity_dict, path)
        assert n == len(entity_dict)
        loaded = load_entity_dict(path)
        assert len(loaded) == len(entity_dict)
        for entry in entity_dict:
            restored = loaded.by_id(entry.entity_id)
            assert restored.name == entry.name
            assert restored.type_id == entry.type_id

    def test_multiword_names_survive(self, tmp_path):
        d = EntityDict([EntityEntry(0, "la lakers", 2, "sport_team")])
        path = tmp_path / "dict.tsv"
        save_entity_dict(d, path)
        loaded = load_entity_dict(path)
        assert loaded.by_name("la lakers").entity_id == 0
        assert loaded.scan(["la", "lakers"])[0][2].entity_id == 0

    def test_bad_header(self, tmp_path):
        path = tmp_path / "dict.tsv"
        path.write_text("id\tname\n0\tx\n")
        with pytest.raises(ConfigError):
            load_entity_dict(path)

    def test_bad_column_count(self, tmp_path):
        path = tmp_path / "dict.tsv"
        path.write_text("entity_id\ttype_id\ttype_name\tname\n0\t1\n")
        with pytest.raises(ConfigError):
            load_entity_dict(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_entity_dict(tmp_path / "nope.tsv")
