"""k-hop expansion."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import EntityGraph, k_hop_expansion


@pytest.fixture()
def chain_graph():
    # 0 - 1 - 2 - 3 with decreasing confidences.
    return EntityGraph.from_edge_list(
        5, [(0, 1), (1, 2), (2, 3)], weights=[0.9, 0.8, 0.7]
    )


class TestExpansion:
    def test_depth_zero_returns_seeds(self, chain_graph):
        result = k_hop_expansion(chain_graph, [0], 0)
        assert result.hops == [[0]]
        assert result.scores == {0: 1.0}

    def test_scores_multiply_along_path(self, chain_graph):
        result = k_hop_expansion(chain_graph, [0], 3)
        assert result.scores[1] == pytest.approx(0.9)
        assert result.scores[2] == pytest.approx(0.9 * 0.8)
        assert result.scores[3] == pytest.approx(0.9 * 0.8 * 0.7)

    def test_hops_record_first_reach(self, chain_graph):
        result = k_hop_expansion(chain_graph, [0], 3)
        assert result.hops[1] == [1]
        assert result.hops[2] == [2]
        assert result.depth_of(2) == 2

    def test_path_explanation(self, chain_graph):
        result = k_hop_expansion(chain_graph, [0], 3)
        assert result.path_to(3) == [0, 1, 2, 3]
        assert result.path_to(0) == [0]

    def test_unreached_entity_raises(self, chain_graph):
        result = k_hop_expansion(chain_graph, [0], 1)
        with pytest.raises(GraphError):
            result.path_to(3)
        with pytest.raises(GraphError):
            result.depth_of(4)

    def test_multiple_seeds_deduplicated(self, chain_graph):
        result = k_hop_expansion(chain_graph, [0, 0, 1], 1)
        assert result.seeds == [0, 1]
        assert result.scores[0] == 1.0 and result.scores[1] == 1.0

    def test_best_parent_updates(self):
        # Two paths to node 3: 0-1-3 (0.9*0.2) and 0-2-3 (0.5*0.9).
        g = EntityGraph.from_edge_list(
            4, [(0, 1), (0, 2), (1, 3), (2, 3)], weights=[0.9, 0.5, 0.2, 0.9]
        )
        result = k_hop_expansion(g, [0], 2)
        assert result.scores[3] == pytest.approx(0.45)
        assert result.path_to(3) == [0, 2, 3]

    def test_min_edge_weight_prunes(self, chain_graph):
        result = k_hop_expansion(chain_graph, [0], 3, min_edge_weight=0.85)
        assert 2 not in result.scores

    def test_max_neighbors_cap(self):
        g = EntityGraph.from_edge_list(
            6, [(0, i) for i in range(1, 6)], weights=[0.9, 0.8, 0.7, 0.6, 0.5]
        )
        result = k_hop_expansion(g, [0], 1, max_neighbors_per_node=2)
        reached = set(result.scores) - {0}
        assert reached == {1, 2}  # strongest two edges only

    def test_entities_sorted_by_score(self, chain_graph):
        result = k_hop_expansion(chain_graph, [0], 3)
        entities = result.entities()
        scores = [result.scores[e] for e in entities]
        assert scores == sorted(scores, reverse=True)

    def test_entities_filters(self, chain_graph):
        result = k_hop_expansion(chain_graph, [0], 3)
        assert 0 not in result.entities(exclude_seeds=True)
        assert all(result.scores[e] >= 0.7 for e in result.entities(min_score=0.7))

    def test_invalid_args(self, chain_graph):
        with pytest.raises(GraphError):
            k_hop_expansion(chain_graph, [0], -1)
        with pytest.raises(GraphError):
            k_hop_expansion(chain_graph, [99], 1)

    def test_frontier_exhaustion_pads_hops(self, chain_graph):
        result = k_hop_expansion(chain_graph, [4], 3)  # isolated node
        assert result.hops == [[4], [], [], []]
