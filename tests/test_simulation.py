"""Online A/B simulation substrate."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.simulation import (
    ConversionModel,
    LookAlikeTargeting,
    RuleBasedTargeting,
    collect_seed_users,
    default_services,
    make_service,
)
from repro.text import EntityDict


@pytest.fixture(scope="module")
def services(world):
    return default_services(world, rng=3)


@pytest.fixture(scope="module")
def rule_baseline(world, entity_dict, events):
    return RuleBasedTargeting(world, entity_dict, events)


class TestServices:
    def test_default_services_distinct_topics(self, services):
        topics = [s.primary_topic for s in services]
        assert len(set(topics)) == len(topics)

    def test_profiles_are_distributions(self, services):
        for s in services:
            assert s.profile.sum() == pytest.approx(1.0)
            assert np.argmax(s.profile) == s.primary_topic

    def test_phrases_are_topic_entities(self, world, services):
        for s in services:
            for phrase in s.phrases:
                assert world.entity_by_name(phrase).primary_topic == s.primary_topic

    def test_make_service_validation(self, world):
        with pytest.raises(ConfigError):
            make_service(world, "x", topic=99, base_conversion_rate=0.2)
        with pytest.raises(ConfigError):
            make_service(world, "x", topic=0, base_conversion_rate=0.0)

    def test_affinity_normalised(self, world, services):
        aff = services[0].user_affinity(world)
        assert aff.max() == pytest.approx(1.0)
        assert (aff >= 0).all()


class TestConversionModel:
    def test_calibration_matches_base_rate(self, world, services):
        model = ConversionModel(world)
        for s in services:
            probs = model.conversion_probabilities(s)
            assert probs.mean() == pytest.approx(s.base_conversion_rate, abs=0.01)

    def test_high_affinity_users_convert_more(self, world, services):
        model = ConversionModel(world)
        s = services[0]
        probs = model.conversion_probabilities(s)
        aff = s.user_affinity(world)
        top = aff > np.quantile(aff, 0.9)
        bottom = aff < np.quantile(aff, 0.1)
        assert probs[top].mean() > probs[bottom].mean() + 0.1

    def test_exposure_outcome_counts(self, world, services):
        model = ConversionModel(world)
        outcome = model.expose(services[0], np.arange(50), rng=0)
        assert outcome.num_exposure == 50
        assert 0 <= outcome.num_conversion <= 50
        assert outcome.cvr == outcome.num_conversion / 50

    def test_slope_validation(self, world):
        with pytest.raises(ConfigError):
            ConversionModel(world, slope=0)


class TestRuleBaseline:
    def test_targets_requested_count(self, rule_baseline, services):
        result = rule_baseline.target(services[0], 25, rng=0)
        assert len(result.user_ids) == 25
        assert result.elapsed_seconds >= 0

    def test_rule_better_than_random(self, world, rule_baseline, services):
        service = services[0]
        aff = service.user_affinity(world)
        result = rule_baseline.target(service, 30, rng=0)
        assert aff[result.user_ids].mean() > aff.mean()

    def test_topic_oracle_at_least_as_good(self, world, rule_baseline, services):
        service = services[0]
        aff = service.user_affinity(world)
        plain = aff[rule_baseline.target(service, 30, rng=0).user_ids].mean()
        oracle = aff[rule_baseline.target_with_topic_oracle(service, 30, rng=0).user_ids].mean()
        assert oracle >= plain - 0.05

    def test_service_types_from_phrases(self, rule_baseline, world, services):
        types = rule_baseline.service_types(services[0])
        phrase_types = {
            world.entity_by_name(p).type_id for p in services[0].phrases
        }
        assert set(types) == phrase_types


class TestLookAlike:
    def test_requires_seeds(self, world, entity_dict, events, services):
        model = LookAlikeTargeting(world, entity_dict, events)
        with pytest.raises(ConfigError):
            model.target(services[0], None, 10)
        with pytest.raises(ConfigError):
            model.target(services[0], np.array([]), 10)

    def test_expands_seed_audience(self, world, entity_dict, events, services):
        service = services[0]
        model = LookAlikeTargeting(world, entity_dict, events)
        conversion = ConversionModel(world)
        # A past campaign over the whole population, repeated to gather a
        # realistic seed pool.
        seeds = np.unique(
            np.concatenate(
                [
                    collect_seed_users(
                        conversion.expose(service, np.arange(world.num_users), rng=r)
                    )
                    for r in (0, 1, 2)
                ]
            )
        )
        assert len(seeds) >= 20
        result = model.target(service, seeds, 30, rng=1)
        aff = service.user_affinity(world)
        assert aff[result.user_ids].mean() > aff.mean()
        assert result.elapsed_seconds > 0
