"""Marketer-facing explanations."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import EntityGraph
from repro.online import GraphReasoner, explain_expansion, explain_targeting, explain_user
from repro.preference import PreferenceStore
from repro.text import EntityDict, EntityEntry
from repro.text.sequence_extractor import UserEntitySequence


@pytest.fixture()
def setup():
    entity_dict = EntityDict(
        [
            EntityEntry(0, "nba", 3, "sport_event"),
            EntityEntry(1, "lakers", 2, "sport_team"),
            EntityEntry(2, "james", 1, "celebrity"),
        ]
    )
    graph = EntityGraph.from_edge_list(3, [(0, 1), (1, 2)], weights=[0.9, 0.8])
    reasoner = GraphReasoner(graph, entity_dict)
    view = reasoner.expand(["nba"], depth=2)
    sequences = {
        0: UserEntitySequence(0, [0, 0, 1]),
        1: UserEntitySequence(1, [2]),
        2: UserEntitySequence(2, []),
    }
    return entity_dict, view, sequences


class TestExpansionText:
    def test_contains_paths_and_types(self, setup):
        _, view, _ = setup
        text = explain_expansion(view)
        assert "seeds: nba" in text
        assert "nba > lakers > james" in text
        assert "sport_team" in text

    def test_max_entities_truncates(self, setup):
        _, view, _ = setup
        text = explain_expansion(view, max_entities=1)
        assert "lakers" not in text


class TestUserExplanation:
    def test_drivers_from_history(self, setup):
        entity_dict, view, sequences = setup
        explanation = explain_user(0, 1.5, [0, 1, 2], sequences, entity_dict)
        names = [d[0] for d in explanation.drivers]
        assert names[0] == "nba"  # 2/3 of the history
        assert "lakers" in names
        assert "interacted with nba" in explanation.to_text()

    def test_no_history_falls_back_to_similarity_text(self, setup):
        entity_dict, _, sequences = setup
        explanation = explain_user(2, 0.4, [0], sequences, entity_dict)
        assert explanation.drivers == []
        assert "embedding similarity" in explanation.to_text()

    def test_unknown_user_handled(self, setup):
        entity_dict, _, sequences = setup
        explanation = explain_user(99, 0.1, [0], sequences, entity_dict)
        assert explanation.drivers == []

    def test_requires_chosen_entities(self, setup):
        entity_dict, _, sequences = setup
        with pytest.raises(ConfigError):
            explain_user(0, 1.0, [], sequences, entity_dict)

    def test_max_drivers_cap(self, setup):
        entity_dict, _, sequences = setup
        explanation = explain_user(0, 1.0, [0, 1], sequences, entity_dict, max_drivers=1)
        assert len(explanation.drivers) == 1


class TestFullReport:
    def test_report_combines_everything(self, setup, rng):
        entity_dict, view, sequences = setup
        store = PreferenceStore(rng.normal(size=(3, 4))).build(sequences, num_users=3)
        users = store.top_users_for_entities([0, 1, 2], k=2)
        report = explain_targeting(view, users, store, sequences, entity_dict)
        assert "top users" in report
        assert "seeds: nba" in report
        assert f"user {users[0].user_id}" in report
