"""ServingRuntime: atomic hot-swap, version-keyed caching, batched reads.

These tests drive the runtime with hand-built artifacts (no TRMP training)
so the swap/caching semantics are isolated from the offline pipeline.
"""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.graph import EntityGraph
from repro.online.reasoning import GraphReasoner
from repro.preference.store import PreferenceStore
from repro.serving import ServingRuntime
from repro.text import EntityDict
from repro.text.sequence_extractor import UserEntitySequence


@pytest.fixture(scope="module")
def entity_dict(world):
    return EntityDict.from_world(world)


def make_reasoner(world, entity_dict, edges, weights):
    graph = EntityGraph.from_edge_list(
        world.num_entities, edges, weights, [0] * len(edges)
    )
    return GraphReasoner(graph, entity_dict)


@pytest.fixture()
def runtime(world, entity_dict):
    runtime = ServingRuntime(cache_size=16)
    reasoner = make_reasoner(
        world, entity_dict, [(0, 1), (1, 2)], [0.9, 0.8]
    )
    runtime.activate_graph(reasoner, version=1, tag="week-0")
    return runtime


def build_preferences(world, seed=0):
    rng = np.random.default_rng(seed)
    embeddings = rng.normal(size=(world.num_entities, 6))
    sequences = {
        u: UserEntitySequence(u, list(rng.integers(0, world.num_entities, size=6)))
        for u in range(40)
    }
    return PreferenceStore(embeddings, head_size=16).build(sequences, world.num_users)


class TestActivation:
    def test_expand_before_any_graph_raises(self):
        with pytest.raises(NotFittedError):
            ServingRuntime().expand(["anything"])

    def test_target_before_preferences_raises(self, runtime):
        with pytest.raises(NotFittedError):
            runtime.target([0], k=5)

    def test_versions_reflect_activations(self, runtime, world):
        assert runtime.versions() == {
            "graph_version": 1,
            "graph_tag": "week-0",
            "graph_format": "memory",
            "graph_shards": 1,
            "preference_version": None,
            "preference_tag": None,
            "preference_format": None,
            "preference_shards": 1,
        }
        runtime.activate_preferences(build_preferences(world), version=1, tag="daily-1")
        assert runtime.versions()["preference_version"] == 1
        assert runtime.versions()["preference_tag"] == "daily-1"

    def test_health_payload(self, runtime):
        health = runtime.health()
        assert health["graph_ready"] and not health["preferences_ready"]
        assert health["swap_count"] == 1
        assert health["cache"]["size"] == 0
        assert health["graph_version"] == 1


class TestReadThroughCache:
    def test_repeat_expansion_is_a_cache_hit(self, runtime, world):
        phrase = world.entities[0].name
        cold = runtime.expand([phrase], depth=2)
        warm = runtime.expand([phrase], depth=2)
        assert warm is cold  # served from cache, not recomputed
        stats = runtime.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_different_knobs_are_different_entries(self, runtime, world):
        phrase = world.entities[0].name
        runtime.expand([phrase], depth=1)
        runtime.expand([phrase], depth=2)
        runtime.expand([phrase], depth=2, min_score=0.5)
        assert runtime.cache.stats()["misses"] == 3

    def test_phrase_normalisation_shares_entries(self, runtime, world):
        phrase = world.entities[0].name
        runtime.expand([phrase], depth=2)
        warm = runtime.cache.stats()["hits"]
        runtime.expand([f"  {phrase.upper()}  ".lower()], depth=2)
        assert runtime.cache.stats()["hits"] == warm + 1


class TestHotSwap:
    def test_refresh_mid_sequence_is_atomic_and_version_scoped(
        self, runtime, world, entity_dict
    ):
        phrase = world.entities[0].name

        # Request burst on version 1 (second call is cached).
        v1_view = runtime.expand([phrase], depth=2)
        assert runtime.expand([phrase], depth=2) is v1_view
        v1_ids = {e.entity_id for e in v1_view.entities}
        assert v1_ids == {0, 1, 2}

        # An in-flight request pins the old generation...
        old_generation = runtime.acquire()

        # ...while the weekly refresh hot-swaps a different graph in.
        new_reasoner = make_reasoner(
            world, entity_dict, [(0, 3), (3, 4)], [0.9, 0.8]
        )
        runtime.activate_graph(new_reasoner, version=2, tag="week-1")

        # The pinned generation still serves the old artifact, untouched.
        assert old_generation.graph_version == 1
        old_view = old_generation.reasoner.expand([phrase], depth=2)
        assert {e.entity_id for e in old_view.entities} == v1_ids

        # New requests see the new version, and the cached v1 expansion is
        # never served for it: the first v2 request recomputes.
        misses_before = runtime.cache.stats()["misses"]
        v2_view = runtime.expand([phrase], depth=2)
        assert runtime.cache.stats()["misses"] == misses_before + 1
        assert v2_view is not v1_view
        assert {e.entity_id for e in v2_view.entities} == {0, 3, 4}
        assert runtime.versions()["graph_version"] == 2

    def test_swap_purges_replaced_version_entries(self, runtime, world, entity_dict):
        runtime.expand([world.entities[0].name], depth=2)
        assert len(runtime.cache) == 1
        runtime.activate_graph(
            make_reasoner(world, entity_dict, [(0, 3)], [0.9]), version=2
        )
        assert len(runtime.cache) == 0

    def test_preference_swap_keeps_graph_generation(self, runtime, world):
        runtime.activate_preferences(build_preferences(world, seed=1), version=1)
        first = runtime.acquire()
        runtime.activate_preferences(build_preferences(world, seed=2), version=2)
        second = runtime.acquire()
        assert first.preference_version == 1
        assert second.preference_version == 2
        assert second.graph_version == first.graph_version == 1
        # The old generation still targets with its own store.
        old = first.targeting.target([0, 1], k=5)
        new = second.targeting.target([0, 1], k=5)
        assert len(old.users) == len(new.users) == 5


class TestSwapEventLog:
    def test_events_record_old_to_new_transitions(self, runtime, world, entity_dict):
        runtime.activate_graph(
            make_reasoner(world, entity_dict, [(0, 3)], [0.9]), version=2, tag="week-1"
        )
        runtime.activate_preferences(build_preferences(world), version=1, tag="daily-1")
        events = runtime.swap_events()
        assert [(e["kind"], e["old_version"], e["new_version"]) for e in events] == [
            ("graph", None, 1),
            ("graph", 1, 2),
            ("preferences", None, 1),
        ]
        assert events[1]["tag"] == "week-1"
        assert all(e["duration_ms"] >= 0 for e in events)
        assert all(e["at"] > 0 for e in events)

    def test_health_exposes_recent_swaps(self, runtime):
        health = runtime.health()
        assert len(health["recent_swaps"]) == 1
        assert health["recent_swaps"][0]["new_version"] == 1

    def test_version_gauges_follow_swaps(self, runtime, world, entity_dict):
        metrics = runtime.obs.metrics
        assert metrics.get_value("serving_active_version", kind="graph") == 1
        runtime.activate_graph(
            make_reasoner(world, entity_dict, [(0, 3)], [0.9]), version=5
        )
        assert metrics.get_value("serving_active_version", kind="graph") == 5
        assert metrics.get_value("serving_hot_swaps_total", kind="graph") == 2


class TestBatchedTargeting:
    def test_batch_matches_sequential(self, runtime, world):
        runtime.activate_preferences(build_preferences(world), version=1)
        sets = [[0, 1, 2], [3, 4], [1]]
        weights = [[0.5, 0.3, 0.2], None, None]
        batched = runtime.target_batch(sets, k=7, weights=weights)
        assert len(batched) == 3
        for ids, w, batch_result in zip(sets, weights, batched):
            single = runtime.target(ids, k=7, weights=w)
            assert [u.user_id for u in single.users] == [
                u.user_id for u in batch_result.users
            ]
            assert [u.score for u in single.users] == pytest.approx(
                [u.score for u in batch_result.users]
            )

    def test_full_flow_for_phrases(self, runtime, world):
        runtime.activate_preferences(build_preferences(world), version=1)
        view, result = runtime.target_for_phrases(
            [world.entities[0].name], depth=2, k=5
        )
        assert len(view.entities) >= 1
        assert len(result.users) == 5

    def test_warm_primes_the_cache(self, runtime, world):
        primed = runtime.warm(
            [[world.entities[0].name], ["definitely-not-an-entity"]], depths=(1, 2)
        )
        assert primed == 2  # the unknown phrase is skipped, both depths primed
        assert len(runtime.cache) == 2
