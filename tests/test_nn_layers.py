"""Dense layers: Linear, MLP, Embedding, LayerNorm, attention, transformer."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import (
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    MultiHeadAttention,
    TransformerEncoder,
    TransformerEncoderLayer,
)
from repro.tensor import Adam, Tensor

from helpers import assert_gradcheck


class TestLinear:
    def test_shapes_and_affine(self, rng):
        layer = Linear(4, 3, rng=0)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        assert out.shape == (5, 3)
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self):
        layer = Linear(4, 3, rng=0, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck_through_layer(self, rng):
        layer = Linear(3, 2, rng=0)
        x = rng.normal(size=(4, 3))
        assert_gradcheck(lambda t: (layer(t) ** 2).sum(), x)


class TestMLP:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MLP([4])
        with pytest.raises(ConfigError):
            MLP([4, 2], activation="swish")

    def test_forward_shape(self, rng):
        mlp = MLP([4, 8, 8, 1], rng=0)
        assert mlp(Tensor(rng.normal(size=(6, 4)))).shape == (6, 1)

    def test_learns_xor_like_function(self, rng):
        x = rng.normal(size=(200, 2))
        y = (np.sign(x[:, 0] * x[:, 1]) + 1) / 2  # XOR of signs
        mlp = MLP([2, 16, 1], rng=0, activation="tanh")
        opt = Adam(mlp.parameters(), lr=0.03)
        from repro.nn.functional import binary_cross_entropy_with_logits

        for _ in range(300):
            opt.zero_grad()
            logits = mlp(Tensor(x)).reshape(200)
            loss = binary_cross_entropy_with_logits(logits, y)
            loss.backward()
            opt.step()
        preds = mlp(Tensor(x)).data.reshape(-1) > 0
        assert (preds == (y == 1)).mean() > 0.9


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=0)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], emb.weight.data[1])

    def test_gradient_accumulates_on_repeats(self):
        emb = Embedding(5, 2, rng=0)
        out = emb(np.array([1, 1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestLayerNorm:
    def test_output_statistics(self, rng):
        ln = LayerNorm(16)
        out = ln(Tensor(rng.normal(loc=5.0, scale=3.0, size=(8, 16)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(8), atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(8), atol=1e-2)

    def test_gradcheck(self, rng):
        ln = LayerNorm(5)
        x = rng.normal(size=(3, 5))
        assert_gradcheck(lambda t: (ln(t) ** 2).sum(), x)

    def test_gamma_beta_trainable(self):
        ln = LayerNorm(4)
        assert len(ln.parameters()) == 2


class TestMultiHeadAttention:
    def test_dim_head_validation(self):
        with pytest.raises(ConfigError):
            MultiHeadAttention(10, 3)

    def test_self_attention_shape(self, rng):
        mha = MultiHeadAttention(8, 2, rng=0)
        out = mha(Tensor(rng.normal(size=(3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_masked_positions_do_not_influence(self, rng):
        mha = MultiHeadAttention(8, 2, rng=0)
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[True, True, False, False]])
        out1 = mha(Tensor(x), key_padding_mask=mask).data
        x2 = x.copy()
        x2[0, 2:] = 99.0  # change only masked keys
        out2 = mha(Tensor(x2), key_padding_mask=mask).data
        # Valid *query* rows attend only to unmasked keys, so they match.
        np.testing.assert_allclose(out1[0, :2], out2[0, :2], atol=1e-10)

    def test_cross_attention(self, rng):
        mha = MultiHeadAttention(8, 2, rng=0)
        q = Tensor(rng.normal(size=(2, 3, 8)))
        kv = Tensor(rng.normal(size=(2, 6, 8)))
        assert mha(q, key=kv).shape == (2, 3, 8)

    def test_gradients_reach_all_projections(self, rng):
        mha = MultiHeadAttention(8, 2, rng=0)
        out = mha(Tensor(rng.normal(size=(2, 4, 8))))
        (out * out).mean().backward()
        assert all(p.grad is not None for p in mha.parameters())


class TestTransformer:
    def test_layer_residual_shape(self, rng):
        layer = TransformerEncoderLayer(8, 2, rng=0)
        out = layer(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_encoder_shape_and_grads(self, rng):
        enc = TransformerEncoder(vocab_size=30, dim=8, num_layers=2, num_heads=2, max_len=12, rng=0)
        ids = rng.integers(0, 30, size=(3, 7))
        out = enc(ids)
        assert out.shape == (3, 7, 8)
        (out * out).mean().backward()
        assert all(p.grad is not None for p in enc.parameters())

    def test_padding_mask_changes_valid_outputs_only_via_attention(self, rng):
        enc = TransformerEncoder(vocab_size=30, dim=8, num_layers=1, num_heads=2, max_len=12, rng=0)
        ids = rng.integers(1, 30, size=(1, 6))
        mask = np.array([[True] * 4 + [False] * 2])
        out1 = enc(ids, key_padding_mask=mask).data
        ids2 = ids.copy()
        ids2[0, 4:] = 1  # change padded token ids
        out2 = enc(ids2, key_padding_mask=mask).data
        np.testing.assert_allclose(out1[0, :4], out2[0, :4], atol=1e-10)
