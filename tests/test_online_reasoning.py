"""Online graph reasoning: phrase resolution and expansion views."""

import numpy as np
import pytest

from repro.errors import GraphError, VocabularyError
from repro.graph import EntityGraph
from repro.online import GraphReasoner
from repro.text import EntityDict, EntityEntry


@pytest.fixture()
def reasoner():
    entity_dict = EntityDict(
        [
            EntityEntry(0, "nba", 0, "sport_event"),
            EntityEntry(1, "lakers", 1, "sport_team"),
            EntityEntry(2, "james", 2, "celebrity"),
            EntityEntry(3, "tesla", 3, "car"),
        ]
    )
    graph = EntityGraph.from_edge_list(
        4, [(0, 1), (1, 2)], weights=[0.9, 0.8]
    )
    return GraphReasoner(graph, entity_dict)


class TestResolve:
    def test_exact_phrase(self, reasoner):
        assert reasoner.resolve_phrase("NBA") == [0]

    def test_phrase_with_noise_tokens(self, reasoner):
        assert reasoner.resolve_phrase("watch the lakers tonight") == [1]

    def test_multiple_entities_in_phrase(self, reasoner):
        assert reasoner.resolve_phrase("nba lakers") == [0, 1]

    def test_unknown_phrase_without_fallback_raises(self, reasoner):
        with pytest.raises(VocabularyError):
            reasoner.resolve_phrase("totally new thing")

    def test_semantic_fallback(self, world, semantic_encoder, e_semantic, entity_dict):
        graph = EntityGraph.from_edge_list(world.num_entities, [(0, 1)])
        reasoner = GraphReasoner(
            graph, entity_dict, semantic_encoder=semantic_encoder, e_semantic=e_semantic
        )
        # A phrase made of topic-0 words should resolve to some entity.
        word = world.topic_words[0][0]
        ids = reasoner.resolve_phrase(f"{word} {word}", fallback_k=3)
        assert len(ids) == 3
        assert all(0 <= i < world.num_entities for i in ids)


class TestExpand:
    def test_view_contains_paths_and_types(self, reasoner):
        view = reasoner.expand(["nba"], depth=2)
        assert view.seeds == ["nba"]
        names = {e.name for e in view.entities}
        assert names == {"nba", "lakers", "james"}
        james = next(e for e in view.entities if e.name == "james")
        assert james.hop == 2
        assert james.path == ["nba", "lakers", "james"]
        assert james.score == pytest.approx(0.9 * 0.8)
        assert james.type_name == "celebrity"

    def test_depth_limits_reach(self, reasoner):
        view = reasoner.expand(["nba"], depth=1)
        assert {e.name for e in view.entities} == {"nba", "lakers"}

    def test_entities_sorted_by_score(self, reasoner):
        view = reasoner.expand(["nba"], depth=2)
        scores = [e.score for e in view.entities]
        assert scores == sorted(scores, reverse=True)

    def test_at_hop_and_top(self, reasoner):
        view = reasoner.expand(["nba"], depth=2)
        assert [e.name for e in view.at_hop(1)] == ["lakers"]
        assert len(view.top(2)) == 2

    def test_min_score_filter(self, reasoner):
        view = reasoner.expand(["nba"], depth=2, min_score=0.85)
        assert {e.name for e in view.entities} == {"nba", "lakers"}

    def test_invalid_depth(self, reasoner):
        with pytest.raises(GraphError):
            reasoner.expand(["nba"], depth=-1)

    def test_no_entities_resolved(self, reasoner):
        with pytest.raises(VocabularyError):
            reasoner.expand([""], depth=1)
