"""GraphStore maintenance: compaction, scans, stats, incremental prefs."""

import numpy as np
import pytest

from repro.errors import ConfigError, StorageError
from repro.graph import GraphStore
from repro.preference import PreferenceStore
from repro.text.sequence_extractor import UserEntitySequence


@pytest.fixture()
def store(tmp_path):
    store = GraphStore(tmp_path / "store", num_nodes=20)
    for week in range(5):
        store.put_edges([(week, week + 1)])
        store.commit_version(f"week-{week}")
    return store


class TestCompaction:
    def test_drops_old_snapshots(self, store):
        removed = store.compact(keep_last=2)
        assert removed == 3
        versions = [v["version"] for v in store.versions()]
        assert versions == [4, 5]
        # Old snapshot files are gone from disk.
        snapshots = sorted(store.path.glob("snapshot-*.npz"))
        assert len(snapshots) == 2

    def test_kept_versions_still_load(self, store):
        store.compact(keep_last=2)
        assert store.load_version(5).num_edges == 5
        with pytest.raises(StorageError):
            store.load_version(1)

    def test_noop_when_few_versions(self, store):
        assert store.compact(keep_last=10) == 0
        assert len(store.versions()) == 5

    def test_keep_last_validation(self, store):
        with pytest.raises(StorageError):
            store.compact(keep_last=0)

    def test_survives_reopen(self, store):
        store.compact(keep_last=1)
        reopened = GraphStore(store.path)
        assert [v["version"] for v in reopened.versions()] == [5]


class TestScanAndStats:
    def test_scan_edges_yields_all(self, store):
        edges = list(store.scan_edges())
        assert len(edges) == 5
        assert all(len(e) == 4 for e in edges)
        assert (0, 1, 1.0, 0) in edges

    def test_scan_specific_version(self, store):
        assert len(list(store.scan_edges(version=2))) == 2

    def test_scan_empty_store_raises(self, tmp_path):
        fresh = GraphStore(tmp_path / "fresh", num_nodes=5)
        with pytest.raises(StorageError):
            list(fresh.scan_edges())

    def test_stats_counters(self, store):
        store.put_edges([(10, 11)])  # uncommitted
        stats = store.stats()
        assert stats["num_versions"] == 5
        assert stats["latest_version"] == 5
        assert stats["latest_edges"] == 5
        assert stats["memtable_entries"] == 1
        assert stats["wal_bytes"] > 0


class TestIncrementalPreference:
    @pytest.fixture()
    def built_store(self, rng):
        vectors = rng.normal(size=(6, 4))
        sequences = {0: UserEntitySequence(0, [1, 2]), 1: UserEntitySequence(1, [3])}
        return PreferenceStore(vectors).build(sequences, num_users=3)

    def test_update_matches_full_rebuild(self, built_store, rng):
        new_seq = UserEntitySequence(2, [4, 5, 4])
        built_store.update_user(new_seq)
        rebuilt = PreferenceStore(built_store.entity_embeddings, normalize=False).build(
            {
                0: UserEntitySequence(0, [1, 2]),
                1: UserEntitySequence(1, [3]),
                2: new_seq,
            },
            num_users=3,
        )
        np.testing.assert_allclose(built_store.user_matrix[2], rebuilt.user_matrix[2])
        assert built_store.covered_users[2]

    def test_update_to_empty_uncovers(self, built_store):
        built_store.update_user(UserEntitySequence(0, []))
        assert not built_store.covered_users[0]
        users = built_store.top_users_for_entities([1], k=3)
        assert 0 not in [u.user_id for u in users]

    def test_update_invalidates_heads(self, built_store):
        before = [u.user_id for u in built_store.top_users_for_entity(3, k=2)]
        # Make user 0 a heavy interactor with entity 3.
        built_store.update_user(UserEntitySequence(0, [3, 3, 3, 3]))
        after = built_store.top_users_for_entity(3, k=1)
        assert after[0].user_id == 0 or before[0] == 0

    def test_out_of_range_user(self, built_store):
        with pytest.raises(ConfigError):
            built_store.update_user(UserEntitySequence(99, [1]))
