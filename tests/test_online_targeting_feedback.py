"""Online targeting wrapper and marketer feedback recorder."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.online import FeedbackRecorder, UserTargeting
from repro.preference import PreferenceStore
from repro.text.sequence_extractor import UserEntitySequence


@pytest.fixture()
def targeting(rng):
    vectors = rng.normal(size=(8, 4))
    sequences = {
        0: UserEntitySequence(0, [0, 1]),
        1: UserEntitySequence(1, [2, 3]),
        2: UserEntitySequence(2, [4]),
    }
    store = PreferenceStore(vectors).build(sequences, num_users=4)
    return UserTargeting(store)


class TestTargeting:
    def test_result_fields(self, targeting):
        result = targeting.target([0, 1], k=2)
        assert len(result.users) == 2
        assert result.entity_ids == [0, 1]
        assert result.elapsed_seconds >= 0
        assert result.user_ids == [u.user_id for u in result.users]

    def test_k_validation(self, targeting):
        with pytest.raises(ConfigError):
            targeting.target([0], k=0)

    def test_weights_forwarded(self, targeting):
        weighted = targeting.target([0, 4], k=3, weights=[1000.0, 0.001])
        pure = targeting.target([0], k=3)
        assert weighted.user_ids == pure.user_ids


class TestFeedbackRecorder:
    def test_record_and_pairs(self):
        recorder = FeedbackRecorder()
        recorder.record_relation(3, 1)
        recorder.record_relation(1, 3)  # duplicate, canonicalised
        recorder.record_relation(2, 2)  # self relation ignored
        assert len(recorder) == 1
        np.testing.assert_array_equal(recorder.pairs(), [[1, 3]])

    def test_expansion_choice(self):
        recorder = FeedbackRecorder()
        recorder.record_expansion_choice(0, [5, 7])
        assert len(recorder) == 2
        keys = {tuple(p) for p in recorder.pairs()}
        assert keys == {(0, 5), (0, 7)}

    def test_drain_resets(self):
        recorder = FeedbackRecorder()
        recorder.record_relation(0, 1)
        drained = recorder.drain()
        assert len(drained) == 1
        assert len(recorder) == 0
        assert recorder.pairs().shape == (0, 2)
