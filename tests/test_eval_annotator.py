"""Simulated annotator panel, AEEC, stability."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.eval import (
    AnnotatorPanel,
    average_expansion_entity_count,
    weekly_stability,
)


class TestPanel:
    def test_validation(self, world):
        with pytest.raises(ConfigError):
            AnnotatorPanel(world, num_annotators=0)
        with pytest.raises(ConfigError):
            AnnotatorPanel(world, high_threshold=0.2, medium_threshold=0.4)

    def test_true_relations_judged_accurate(self, world):
        panel = AnnotatorPanel(world)
        graph = world.ground_truth_graph(0.85)
        lo, hi = graph.canonical_pairs()
        pairs = np.stack([lo, hi], axis=1)[:200]
        report = panel.evaluate_relations(pairs)
        assert report.acc > 0.9
        assert report.cors > 0.8

    def test_random_pairs_judged_mostly_inaccurate(self, world, rng):
        panel = AnnotatorPanel(world)
        pairs = rng.integers(0, world.num_entities, size=(300, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        report = panel.evaluate_relations(pairs)
        assert report.acc < 0.5

    def test_scores_in_allowed_set(self, world, rng):
        panel = AnnotatorPanel(world)
        pairs = rng.integers(0, world.num_entities, size=(50, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        scores = panel.judge_pairs(pairs)
        assert set(np.unique(scores)) <= {0.0, 0.5, 1.0}

    def test_sampling_reduces_pair_count(self, world, rng):
        panel = AnnotatorPanel(world)
        pairs = rng.integers(0, world.num_entities, size=(100, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        report = panel.evaluate_relations(pairs, sample_size=20, rng=0)
        assert report.num_pairs == 20

    def test_empty_relations_raise(self, world):
        panel = AnnotatorPanel(world)
        with pytest.raises(ConfigError):
            panel.evaluate_relations(np.empty((0, 2), dtype=np.int64))

    def test_cors_leq_acc(self, world, rng):
        # Correlation score counts medium as 0.5, so CorS <= ACC.
        panel = AnnotatorPanel(world)
        pairs = rng.integers(0, world.num_entities, size=(300, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        report = panel.evaluate_relations(pairs)
        assert report.cors <= report.acc + 1e-12


class TestAEEC:
    def test_formula(self):
        pairs = np.array([[0, 1], [0, 2], [3, 4]])
        # 3 relations over 5 distinct entities → 6/5 endpoints per entity.
        assert average_expansion_entity_count(pairs) == pytest.approx(6 / 5)

    def test_explicit_dictionary_size(self):
        pairs = np.array([[0, 1]])
        assert average_expansion_entity_count(pairs, num_sources=10) == pytest.approx(0.2)

    def test_empty(self):
        assert average_expansion_entity_count(np.empty((0, 2))) == 0.0


class TestStability:
    def test_report_fields(self):
        report = weekly_stability([0.95, 0.97, 0.96])
        assert report.mean_acc == pytest.approx(0.96)
        assert report.min_acc == 0.95
        assert report.max_acc == 0.97
        expected_var = np.var(np.array([95.0, 97.0, 96.0]))
        assert report.variance_pp == pytest.approx(expected_var)

    def test_constant_series_zero_variance(self):
        assert weekly_stability([0.9, 0.9, 0.9]).variance_pp == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            weekly_stability([0.9])
        with pytest.raises(ConfigError):
            weekly_stability([0.9, 1.5])
