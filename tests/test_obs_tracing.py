"""Tracer span nesting, ring buffer, JSONL export; injectable clocks."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import ManualClock, Observability, Tracer


@pytest.fixture()
def clock():
    return ManualClock(start=1_000.0)


@pytest.fixture()
def tracer(clock):
    return Tracer(capacity=16, clock=clock)


class TestClock:
    def test_manual_clock_only_moves_on_advance(self, clock):
        assert clock.time() == 1_000.0
        assert clock.perf() == 0.0
        clock.advance(2.5)
        assert clock.time() == 1_002.5
        assert clock.perf() == 2.5

    def test_cannot_move_backwards(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestSpanNesting:
    def test_nested_spans_share_trace_and_parent_correctly(self, tracer, clock):
        with tracer.span("outer", depth=2) as outer:
            clock.advance(0.1)
            with tracer.span("inner") as inner:
                clock.advance(0.05)
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration_ms == pytest.approx(50)
        assert outer.duration_ms == pytest.approx(150)
        assert outer.tags == {"depth": 2}

    def test_siblings_share_parent_but_not_ids(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_separate_roots_are_separate_traces(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert len(tracer.traces()) == 2

    def test_exception_marks_span_errored(self, tracer):
        with pytest.raises(ReproError):
            with tracer.span("boom"):
                raise ReproError("nope")
        (span,) = tracer.finished()
        assert span.status == "error"

    def test_tag_while_open(self, tracer):
        with tracer.span("op") as span:
            span.tag(result_size=40)
        assert tracer.finished()[0].tags["result_size"] == 40

    def test_ring_buffer_ages_out_old_spans(self, clock):
        tracer = Tracer(capacity=3, clock=clock)
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        assert [s.name for s in tracer.finished()] == ["op2", "op3", "op4"]

    def test_overflow_evicts_oldest_traces_first(self, clock):
        # Many full traces through a small ring: only the newest survive,
        # strictly in finish order.
        tracer = Tracer(capacity=4, clock=clock)
        for i in range(10):
            with tracer.span(f"req{i}"):
                with tracer.span(f"work{i}"):
                    pass
        # Each trace finishes child-then-root, so the ring holds the last
        # two complete traces.
        names = [s.name for s in tracer.finished()]
        assert names == ["work8", "req8", "work9", "req9"]
        assert set(tracer.traces()) == {9, 10}

    def test_overflow_keeps_parent_links_valid_in_export(self, clock, tmp_path):
        # After heavy eviction, every surviving child's parent_id must
        # still resolve to a span inside the export (children finish before
        # parents, so a trace is never split across the eviction boundary
        # in parent-before-child order).
        tracer = Tracer(capacity=6, clock=clock)
        for i in range(20):
            with tracer.span(f"root{i}"):
                with tracer.span(f"mid{i}"):
                    with tracer.span(f"leaf{i}"):
                        pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 6
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        by_id = {row["span_id"]: row for row in rows}
        for row in rows:
            if row["parent_id"] is not None:
                parent = by_id[row["parent_id"]]  # KeyError = dangling link
                assert parent["trace_id"] == row["trace_id"]
        # Exactly the final two complete traces survive, oldest first.
        assert [r["name"] for r in rows] == [
            "leaf18", "mid18", "root18", "leaf19", "mid19", "root19",
        ]


class TestExport:
    def test_jsonl_round_trip_preserves_parenting(self, tracer, clock, tmp_path):
        with tracer.span("root"):
            clock.advance(0.2)
            with tracer.span("child", stage="alpc"):
                clock.advance(0.1)
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {row["name"]: row for row in rows}
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["child"]["trace_id"] == by_name["root"]["trace_id"]
        assert by_name["child"]["tags"] == {"stage": "alpc"}
        assert by_name["child"]["duration_ms"] == pytest.approx(100)
        assert by_name["root"]["start_time"] == 1_000.0

    def test_clear_empties_the_buffer(self, tracer):
        with tracer.span("op"):
            pass
        tracer.clear()
        assert tracer.finished() == []


class TestDisabledTracer:
    def test_disabled_bundle_produces_no_spans(self):
        obs = Observability.disabled()
        with obs.tracer.span("op") as span:
            span.tag(anything=1)  # noop span still accepts tags
        assert obs.tracer.finished() == []
        assert obs.metrics.render_prometheus() == ""

    def test_shared_clock_across_bundle(self):
        clock = ManualClock()
        obs = Observability(clock=clock)
        assert obs.tracer._clock is clock
        assert obs.clock is clock
