"""Numerical reference checks: attention and GCN against naive NumPy math."""

import numpy as np
import pytest
from scipy.special import softmax as scipy_softmax

from repro.gnn import GCNLayer
from repro.nn import MultiHeadAttention
from repro.tensor import Tensor


def reference_attention(x: np.ndarray, mha: MultiHeadAttention) -> np.ndarray:
    """Single-batch reference implementation with plain numpy."""
    batch, seq, dim = x.shape
    H, dh = mha.num_heads, mha.head_dim
    q = x @ mha.q_proj.weight.data + mha.q_proj.bias.data
    k = x @ mha.k_proj.weight.data + mha.k_proj.bias.data
    v = x @ mha.v_proj.weight.data + mha.v_proj.bias.data

    out = np.zeros_like(x)
    for b in range(batch):
        heads = []
        for h in range(H):
            sl = slice(h * dh, (h + 1) * dh)
            logits = q[b][:, sl] @ k[b][:, sl].T / np.sqrt(dh)
            weights = scipy_softmax(logits, axis=-1)
            heads.append(weights @ v[b][:, sl])
        merged = np.concatenate(heads, axis=-1)
        out[b] = merged @ mha.out_proj.weight.data + mha.out_proj.bias.data
    return out


class TestAttentionReference:
    def test_matches_naive_implementation(self, rng):
        mha = MultiHeadAttention(8, 2, rng=0)
        x = rng.normal(size=(3, 5, 8))
        ours = mha(Tensor(x)).data
        theirs = reference_attention(x, mha)
        np.testing.assert_allclose(ours, theirs, atol=1e-10)

    def test_single_head_equals_two_half_heads_structure(self, rng):
        # Sanity: different head counts change the output (heads matter).
        x = rng.normal(size=(1, 4, 8))
        one = MultiHeadAttention(8, 1, rng=0)(Tensor(x)).data
        two = MultiHeadAttention(8, 2, rng=0)(Tensor(x)).data
        assert np.abs(one - two).max() > 1e-6


class TestGCNReference:
    def test_matches_dense_normalised_adjacency(self, rng):
        # GCN layer output == D^-1 (A + I normalised) X W computed densely.
        n = 6
        src = np.array([0, 1, 1, 2, 3, 4])
        dst = np.array([1, 0, 2, 1, 4, 3])
        layer = GCNLayer(4, 3, rng=0)
        x = rng.normal(size=(n, 4))

        ours = layer(Tensor(x), src, dst, n).data

        transformed = x @ layer.linear.weight.data + layer.linear.bias.data
        deg = np.bincount(dst, minlength=n) + 1.0
        dense = np.zeros((n, n))
        for s, d in zip(src, dst):
            dense[d, s] = 1.0 / np.sqrt(deg[s] * deg[d])
        dense += np.diag(1.0 / deg)
        theirs = dense @ transformed
        np.testing.assert_allclose(ours, theirs, atol=1e-10)
