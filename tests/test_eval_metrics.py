"""Evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.eval import (
    average_precision,
    binary_accuracy,
    precision_at_k,
    precision_recall,
    roc_auc,
)


def quadratic_auc(labels, scores):
    """O(n^2) reference AUC with tie handling."""
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    wins = (pos[:, None] > neg[None, :]).sum() + 0.5 * (pos[:, None] == neg[None, :]).sum()
    return wins / (len(pos) * len(neg))


class TestAUC:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 1.0

    def test_inverted_ranking(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 0.0

    def test_random_near_half(self, rng):
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert abs(roc_auc(labels, scores) - 0.5) < 0.03

    @given(st.integers(0, 100_000), st.integers(5, 40))
    @settings(max_examples=40, deadline=None)
    def test_matches_quadratic_reference(self, seed, n):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=n)
        if labels.sum() in (0, n):
            labels[0] = 1 - labels[0]
        scores = rng.choice([0.1, 0.3, 0.5, 0.7], size=n)  # forces ties
        assert roc_auc(labels, scores) == pytest.approx(quadratic_auc(labels, scores))

    def test_requires_both_classes(self):
        with pytest.raises(ConfigError):
            roc_auc(np.ones(5), np.random.rand(5))
        with pytest.raises(ConfigError):
            roc_auc(np.zeros(5), np.random.rand(5))

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            roc_auc(np.ones(3), np.ones(4))


class TestThresholdMetrics:
    def test_binary_accuracy(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.1, 0.2, 0.8])
        assert binary_accuracy(labels, scores) == 0.5

    def test_precision_recall_hand_case(self):
        labels = np.array([1, 1, 0, 0, 1])
        scores = np.array([0.9, 0.2, 0.8, 0.1, 0.7])
        precision, recall = precision_recall(labels, scores, threshold=0.5)
        # predicted positive: idx 0, 2, 4 → TP=2, FP=1, FN=1
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)

    def test_precision_recall_degenerate(self):
        precision, recall = precision_recall(np.array([0, 0]), np.array([0.1, 0.2]))
        assert precision == 0.0 and recall == 0.0

    def test_precision_at_k(self):
        relevance = np.array([1, 1, 0, 0])
        assert precision_at_k(relevance, 2) == 1.0
        assert precision_at_k(relevance, 4) == 0.5
        assert precision_at_k(relevance, 100) == 0.5  # clamps
        with pytest.raises(ConfigError):
            precision_at_k(relevance, 0)


class TestAveragePrecision:
    def test_perfect(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert average_precision(labels, scores) == 1.0

    def test_hand_case(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        # Ranked: 0, 1, 0, 1 → precisions at hits: 1/2, 2/4 → AP = 0.5
        assert average_precision(labels, scores) == pytest.approx(0.5)

    def test_requires_positive(self):
        with pytest.raises(ConfigError):
            average_precision(np.zeros(4), np.random.rand(4))
