"""GraphStore: durability, versioning, recovery."""

import shutil
import struct

import numpy as np
import pytest

from repro.errors import StorageError
from repro.graph import GraphStore


@pytest.fixture()
def store(tmp_path):
    return GraphStore(tmp_path / "store", num_nodes=20)


class TestBasics:
    def test_new_store_requires_num_nodes(self, tmp_path):
        with pytest.raises(StorageError):
            GraphStore(tmp_path / "s")

    def test_put_and_current_graph(self, store):
        store.put_edges([(0, 1), (2, 3)], weights=[0.5, 0.9])
        g = store.current_graph()
        assert g.num_edges == 2
        assert g.has_edge(0, 1)

    def test_put_validates_edges(self, store):
        with pytest.raises(StorageError):
            store.put_edges([(0, 0)])
        with pytest.raises(StorageError):
            store.put_edges([(0, 99)])
        with pytest.raises(StorageError):
            store.put_edges([(0, 1)], weights=[1.0, 2.0])

    def test_delete_edges(self, store):
        store.put_edges([(0, 1), (2, 3)])
        store.delete_edges([(1, 0)])
        g = store.current_graph()
        assert not g.has_edge(0, 1)
        assert g.has_edge(2, 3)

    def test_canonicalises_pairs(self, store):
        store.put_edges([(5, 2)])
        assert store.neighbors(2) == [(5, 1.0, 0)]
        assert store.neighbors(5) == [(2, 1.0, 0)]


class TestVersions:
    def test_commit_and_load(self, store):
        store.put_edges([(0, 1)])
        v1 = store.commit_version("week-0")
        store.put_edges([(2, 3)])
        v2 = store.commit_version("week-1")
        assert (v1, v2) == (1, 2)
        assert store.load_version(v1).num_edges == 1
        assert store.load_version(v2).num_edges == 2
        assert store.load_version().num_edges == 2  # latest by default

    def test_versions_metadata(self, store):
        store.put_edges([(0, 1)])
        store.commit_version("alpha")
        meta = store.versions()
        assert meta[0]["tag"] == "alpha"
        assert meta[0]["edges"] == 1

    def test_load_unknown_version_raises(self, store):
        with pytest.raises(StorageError):
            store.load_version(3)
        with pytest.raises(StorageError):
            store.load_version()  # nothing committed yet

    def test_commit_clears_wal(self, store):
        store.put_edges([(0, 1)])
        store.commit_version()
        assert not store._wal_path.exists()

    def test_empty_commit(self, store):
        v = store.commit_version()
        assert store.load_version(v).num_edges == 0


class TestReadPath:
    def test_neighbors_merge_snapshot_and_memtable(self, store):
        store.put_edges([(0, 1)], weights=[0.5])
        store.commit_version()
        store.put_edges([(0, 2)], weights=[0.7])
        store.delete_edges([(0, 1)])
        assert store.neighbors(0) == [(2, 0.7, 0)]

    def test_neighbors_out_of_range(self, store):
        with pytest.raises(StorageError):
            store.neighbors(99)

    def test_memtable_overwrite_updates_weight(self, store):
        store.put_edges([(0, 1)], weights=[0.5])
        store.put_edges([(0, 1)], weights=[0.8])
        assert store.neighbors(0) == [(1, 0.8, 0)]


class TestDurability:
    def test_reopen_replays_wal(self, tmp_path):
        path = tmp_path / "store"
        store = GraphStore(path, num_nodes=10)
        store.put_edges([(0, 1), (1, 2)])
        del store
        reopened = GraphStore(path)
        assert reopened.current_graph().num_edges == 2

    def test_reopen_after_commit(self, tmp_path):
        path = tmp_path / "store"
        store = GraphStore(path, num_nodes=10)
        store.put_edges([(0, 1)])
        v = store.commit_version()
        del store
        reopened = GraphStore(path)
        assert reopened.latest_version() == v
        assert reopened.load_version().num_edges == 1

    def test_num_nodes_mismatch_on_reopen(self, tmp_path):
        path = tmp_path / "store"
        GraphStore(path, num_nodes=10)
        with pytest.raises(StorageError):
            GraphStore(path, num_nodes=11)

    def test_torn_tail_write_is_truncated(self, tmp_path):
        path = tmp_path / "store"
        store = GraphStore(path, num_nodes=10)
        store.put_edges([(0, 1)])
        store.put_edges([(2, 3)])
        # Simulate a crash mid-append: chop bytes off the last record.
        data = store._wal_path.read_bytes()
        store._wal_path.write_bytes(data[:-3])
        reopened = GraphStore(path)
        g = reopened.current_graph()
        assert g.has_edge(0, 1)
        assert not g.has_edge(2, 3)
        # The corrupt tail is gone; new writes append cleanly.
        reopened.put_edges([(4, 5)])
        again = GraphStore(path)
        assert again.current_graph().has_edge(4, 5)

    def test_corrupted_crc_stops_replay(self, tmp_path):
        path = tmp_path / "store"
        store = GraphStore(path, num_nodes=10)
        store.put_edges([(0, 1)])
        store.put_edges([(2, 3)])
        data = bytearray(store._wal_path.read_bytes())
        # Flip a payload byte in the *second* record.
        header_size = struct.calcsize("<II")
        first_len = struct.unpack_from("<II", data, 0)[0]
        offset = header_size + first_len + header_size + 2
        data[offset] ^= 0xFF
        store._wal_path.write_bytes(bytes(data))
        reopened = GraphStore(path)
        g = reopened.current_graph()
        assert g.has_edge(0, 1)
        assert not g.has_edge(2, 3)

    def test_snapshot_missing_raises(self, tmp_path):
        path = tmp_path / "store"
        store = GraphStore(path, num_nodes=10)
        store.put_edges([(0, 1)])
        v = store.commit_version()
        (path / f"snapshot-{v:06d}.npz").unlink()
        with pytest.raises(StorageError):
            store.load_version(v)


class TestCrashRecoveryEdgeCases:
    """Torn-header vs torn-payload vs trailing-garbage WAL tails, and a
    manifest whose snapshot file vanished — each must recover (or fail)
    cleanly on reopen."""

    @staticmethod
    def _wal_size_after_record_one(store):
        # One record = 8-byte header + payload; capture it while intact.
        return store._wal_path.stat().st_size

    def test_torn_header_at_tail(self, tmp_path):
        path = tmp_path / "store"
        store = GraphStore(path, num_nodes=10)
        store.put_edges([(0, 1)])
        keep = self._wal_size_after_record_one(store)
        # Crash mid-append: only 4 of the next record's 8 header bytes land.
        with open(store._wal_path, "ab") as f:
            f.write(b"\x20\x00\x00\x00")
        reopened = GraphStore(path)
        assert reopened.current_graph().has_edge(0, 1)
        assert reopened._wal_path.stat().st_size == keep  # tail truncated

    def test_torn_payload_at_tail(self, tmp_path):
        path = tmp_path / "store"
        store = GraphStore(path, num_nodes=10)
        store.put_edges([(0, 1)])
        keep = self._wal_size_after_record_one(store)
        # A complete header promising 64 payload bytes, but only 5 written.
        with open(store._wal_path, "ab") as f:
            f.write(struct.pack("<II", 64, 12345))
            f.write(b"abcde")
        reopened = GraphStore(path)
        assert reopened.current_graph().has_edge(0, 1)
        assert reopened._wal_path.stat().st_size == keep

    def test_trailing_garbage_after_valid_record(self, tmp_path):
        path = tmp_path / "store"
        store = GraphStore(path, num_nodes=10)
        store.put_edges([(0, 1)])
        keep = self._wal_size_after_record_one(store)
        # Garbage that parses as a full header+payload but fails the CRC.
        with open(store._wal_path, "ab") as f:
            f.write(struct.pack("<II", 4, 0xDEADBEEF))
            f.write(b"junk")
        reopened = GraphStore(path)
        assert reopened.current_graph().has_edge(0, 1)
        assert reopened._wal_path.stat().st_size == keep
        # The store stays writable after truncation, durably.
        reopened.put_edges([(4, 5)])
        again = GraphStore(path)
        assert again.current_graph().has_edge(0, 1)
        assert again.current_graph().has_edge(4, 5)

    def test_reopen_with_manifest_pointing_at_missing_snapshot(self, tmp_path):
        path = tmp_path / "store"
        store = GraphStore(path, num_nodes=10)
        store.put_edges([(0, 1)])
        v = store.commit_version("week-0")
        del store
        (path / f"snapshot-{v:06d}.npz").unlink()
        # Reopen succeeds (the manifest is intact) ...
        reopened = GraphStore(path)
        assert reopened.latest_version() == v
        # ... and the pinned reader still serves correctly from the
        # redundant CSR artifact, but every read path that needs the
        # snapshot fails loudly instead of silently serving an empty graph.
        reader = reopened.snapshot_reader(v)
        assert reader.artifact_format == "csr"
        assert 1 in reader.neighbors(0)[0]
        with pytest.raises(StorageError):
            reopened.load_version(v)
        with pytest.raises(StorageError):
            reopened.neighbors(0)
        with pytest.raises(StorageError):
            reopened.current_graph()
        # With the CSR artifact gone as well, the reader fails loudly too.
        shutil.rmtree(reopened.csr_path(v))
        with pytest.raises(StorageError):
            GraphStore(path).snapshot_reader(v)
