"""Model-based property test: GraphStore vs an in-memory dictionary model.

Hypothesis drives random sequences of put/delete/commit/reopen operations
against both the real store and a trivial dict model; after every sequence
the store's merged view must equal the model exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphStore

N_NODES = 8

_pair = st.tuples(st.integers(0, N_NODES - 1), st.integers(0, N_NODES - 1)).filter(
    lambda p: p[0] != p[1]
)
_operation = st.one_of(
    st.tuples(st.just("put"), _pair, st.floats(0.1, 1.0)),
    st.tuples(st.just("delete"), _pair),
    st.tuples(st.just("commit")),
    st.tuples(st.just("reopen")),
)


def _canonical(pair):
    u, v = pair
    return (min(u, v), max(u, v))


@given(st.lists(_operation, max_size=25))
@settings(max_examples=40, deadline=None)
def test_store_matches_dict_model(tmp_path_factory, operations):
    path = tmp_path_factory.mktemp("model_store")
    store = GraphStore(path, num_nodes=N_NODES)
    model: dict[tuple[int, int], float] = {}

    for op in operations:
        if op[0] == "put":
            _, pair, weight = op
            store.put_edges([pair], weights=[weight])
            model[_canonical(pair)] = weight
        elif op[0] == "delete":
            _, pair = op
            store.delete_edges([pair])
            model.pop(_canonical(pair), None)
        elif op[0] == "commit":
            store.commit_version()
        elif op[0] == "reopen":
            store = GraphStore(path)

    graph = store.current_graph()
    lo, hi = graph.canonical_pairs()
    observed = {
        (int(a), int(b)): float(w) for a, b, w in zip(lo, hi, graph.weight)
    }
    assert observed == model

    # Point reads agree with the model too.
    for node in range(N_NODES):
        expected = sorted(
            (v if u == node else u, w)
            for (u, v), w in model.items()
            if node in (u, v)
        )
        actual = [(nbr, w) for nbr, w, _ in store.neighbors(node)]
        assert actual == expected
