"""Drift monitoring + swap gating, end to end on a frozen clock.

Two halves mirror the two operational stories:

* **healthy cadence** — two seeded ``weekly_refresh`` runs plus two daily
  preference refreshes: every swap produces a :class:`DriftReport` that is
  persisted in the :class:`ArtifactRegistry` (as JSON next to the
  artifacts), surfaced by ``health()`` and served verbatim by the ``/drift``
  telemetry route — and none of it fires a critical alert;
* **degenerate publish** — a preference index whose scores collapsed to a
  constant: with ``gate_on_critical_drift`` the hot-swap is rejected
  (:class:`DriftGateError`), serving continues on the old generation, the
  report is filed as ``gated`` and the ``critical-drift`` alert fires.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.datasets import BehaviorConfig, BehaviorLogGenerator
from repro.embeddings import SkipGramConfig
from repro.embeddings.mlm import MLMConfig
from repro.embeddings.semantic import SemanticEncoderConfig
from repro.errors import DriftGateError
from repro.obs import ManualClock, Observability, TelemetryServer
from repro.obs.drift import SEVERITY_CRITICAL
from repro.online import EGLSystem
from repro.online.api import EGLService
from repro.preference.store import PreferenceStore
from repro.text.sequence_extractor import UserEntitySequence
from repro.trmp import ALPCConfig, EnsembleConfig, TRMPConfig

FROZEN_START = 1_700_000_000.0


@pytest.fixture(scope="module")
def refreshed_system(world, tmp_path_factory):
    """Two weekly + two daily refreshes under a frozen ManualClock."""
    config = TRMPConfig(
        skipgram=SkipGramConfig(epochs=8, seed=2),
        semantic=SemanticEncoderConfig(mlm=MLMConfig(epochs=4, seed=3)),
        alpc=ALPCConfig(epochs=20, seed=1),
        ensemble=EnsembleConfig(epochs=12, seed=0),
    )
    obs = Observability(clock=ManualClock(start=FROZEN_START))
    system = EGLSystem(
        world, config,
        artifact_root=tmp_path_factory.mktemp("artifacts"),
        obs=obs,
        gate_on_critical_drift=True,
    )
    generator = BehaviorLogGenerator(world, BehaviorConfig(seed=5))
    reports = []
    for week in range(2):
        reports.append(system.weekly_refresh(generator.generate_week(week)))
        obs.clock.advance(7 * 86_400)
    system.daily_preference_refresh(generator.generate(start_day=50, num_days=30, rng=77))
    obs.clock.advance(86_400)
    system.daily_preference_refresh(generator.generate(start_day=55, num_days=30, rng=78))
    return system, reports


class TestHealthyCadence:
    def test_refreshes_swap_without_gating(self, refreshed_system):
        system, reports = refreshed_system
        assert [r.graph_version for r in reports] == [1, 2]
        assert not any(r.swap_rejected for r in reports)
        versions = system.runtime.versions()
        assert versions["graph_version"] == 2
        assert versions["preference_version"] == 2

    def test_drift_reports_filed_per_transition(self, refreshed_system):
        system, _ = refreshed_system
        graph_report = system.registry.drift_report("graph", 2)
        assert graph_report is not None
        assert graph_report.old_version == 1 and graph_report.new_version == 2
        assert graph_report.severity != SEVERITY_CRITICAL
        assert not graph_report.gated
        assert graph_report.metrics["new_edges"] > 0
        assert graph_report.metrics["degree_shift"]["psi"] is not None

        pref_report = system.registry.drift_report("preferences", 2)
        assert pref_report is not None
        assert not pref_report.metrics["degenerate_scores"]
        assert pref_report.metrics["topk_overlap_mean"] is not None

    def test_reports_persisted_as_json_and_rehydrated(self, refreshed_system):
        system, _ = refreshed_system
        root = system.registry.root
        files = sorted(p.name for p in root.glob("drift-*.json"))
        assert files == ["drift-graph-000002.json", "drift-preferences-000002.json"]
        on_disk = json.loads((root / "drift-graph-000002.json").read_text())
        assert on_disk == system.registry.drift_report("graph", 2).to_dict()

        # A fresh registry over the same root sees the filed reports.
        from repro.serving import ArtifactRegistry

        reopened = ArtifactRegistry(root=root)
        assert reopened.drift_report("graph", 2) == system.registry.drift_report("graph", 2)

    def test_frozen_clock_stamps_reports_deterministically(self, refreshed_system):
        system, _ = refreshed_system
        report = system.registry.drift_report("graph", 2)
        assert report.computed_at == FROZEN_START + 7 * 86_400

    def test_health_surfaces_latest_drift_verdicts(self, refreshed_system):
        system, _ = refreshed_system
        drift = system.runtime.health()["drift"]
        assert drift["monitored"] and drift["gate_on_critical_drift"]
        assert drift["graph"]["new_version"] == 2
        assert drift["graph"]["severity"] != SEVERITY_CRITICAL
        assert drift["preferences"]["severity"] != SEVERITY_CRITICAL

    def test_no_critical_alerts_on_healthy_refreshes(self, refreshed_system):
        system, _ = refreshed_system
        system.evaluate_alerts()
        assert not system.alerts.has_critical()
        signals = system.quality_signals()
        assert signals["drift_critical"] == 0.0
        assert "drift_graph_psi" in signals and "drift_preferences_psi" in signals

    def test_drift_metrics_counted(self, refreshed_system):
        system, _ = refreshed_system
        metrics = system.obs.metrics
        total = sum(
            series.value
            for labels, series in metrics.series("drift_reports_total")
            if labels["kind"] == "graph"
        )
        assert total == 1  # v1 -> v2; the first activation has no baseline
        assert metrics.get_value("serving_swap_rejections_total", kind="graph") == 0

    def test_drift_endpoint_serves_persisted_reports(self, refreshed_system):
        system, _ = refreshed_system
        service = EGLService(system)
        with TelemetryServer(service.telemetry_routes()) as server:
            with urllib.request.urlopen(server.url + "/drift", timeout=5) as response:
                payload = json.loads(response.read())
        assert payload["summary"]["graph"]["new_version"] == 2
        served = payload["reports"]["graph"]
        assert served == [system.registry.drift_report("graph", 2).to_dict()]

        with TelemetryServer(service.telemetry_routes()) as server:
            with urllib.request.urlopen(server.url + "/alerts", timeout=5) as response:
                alerts = json.loads(response.read())
        assert alerts["active"] == []
        assert alerts["signals"]["drift_critical"] == 0.0


def _degenerate_store(world, sequences):
    """Zero embeddings + no direct-frequency term: constant scores."""
    return PreferenceStore(
        np.zeros((world.num_entities, 6)), head_size=16, direct_weight=0.0
    ).build(sequences, world.num_users)


class TestDegenerateArtifactGating:
    @pytest.fixture()
    def gated_system(self, world, tmp_path):
        obs = Observability(clock=ManualClock(start=5_000.0))
        system = EGLSystem(
            world, obs=obs, artifact_root=tmp_path, gate_on_critical_drift=True
        )
        rng = np.random.default_rng(0)
        sequences = {
            u: UserEntitySequence(u, list(rng.integers(0, world.num_entities, size=6)))
            for u in range(60)
        }
        good = PreferenceStore(
            rng.normal(size=(world.num_entities, 6)), head_size=16
        ).build(sequences, world.num_users)
        system.runtime.activate_preferences(good, version=1, tag="daily-1")
        return system, sequences

    def test_degenerate_swap_rejected_and_serving_continues(self, gated_system, world):
        system, sequences = gated_system
        before = system.target_users([0, 1], k=5)
        with pytest.raises(DriftGateError, match="degenerate_scores"):
            system.runtime.activate_preferences(
                _degenerate_store(world, sequences), version=2, tag="daily-2"
            )
        # The old generation is still active and still answers.
        assert system.runtime.versions()["preference_version"] == 1
        after = system.target_users([0, 1], k=5)
        assert [u.user_id for u in after.users] == [u.user_id for u in before.users]

    def test_rejected_report_filed_as_gated_critical(self, gated_system, world):
        system, sequences = gated_system
        with pytest.raises(DriftGateError):
            system.runtime.activate_preferences(
                _degenerate_store(world, sequences), version=2
            )
        report = system.registry.drift_report("preferences", 2)
        assert report.severity == SEVERITY_CRITICAL
        assert report.gated
        assert "degenerate_scores" in report.reasons
        # Persisted on disk even though the swap never happened.
        assert (system.registry.root / "drift-preferences-000002.json").exists()

    def test_critical_drift_alert_fires(self, gated_system, world):
        system, sequences = gated_system
        with pytest.raises(DriftGateError):
            system.runtime.activate_preferences(
                _degenerate_store(world, sequences), version=2
            )
        firing = {a["rule"] for a in system.alerts.active()}
        assert "critical-drift" in firing
        assert system.alerts.has_critical()
        assert system.quality_signals()["drift_critical"] == 1.0

    def test_rejection_observable_in_events_and_metrics(self, gated_system, world):
        system, sequences = gated_system
        with pytest.raises(DriftGateError):
            system.runtime.activate_preferences(
                _degenerate_store(world, sequences), version=2
            )
        metrics = system.obs.metrics
        assert metrics.get_value(
            "serving_swap_rejections_total", kind="preferences"
        ) == 1
        rejection = system.runtime.swap_events()[-1]
        assert rejection["rejected"] and rejection["kind"] == "preferences"
        assert rejection["new_version"] == 2
        # health() carries the gated verdict.
        drift = system.runtime.health()["drift"]
        assert drift["preferences"]["gated"]
        assert drift["preferences"]["severity"] == SEVERITY_CRITICAL

    def test_gate_off_records_but_swaps(self, world, tmp_path):
        obs = Observability(clock=ManualClock(start=5_000.0))
        system = EGLSystem(
            world, obs=obs, artifact_root=tmp_path, gate_on_critical_drift=False
        )
        rng = np.random.default_rng(0)
        sequences = {
            u: UserEntitySequence(u, list(rng.integers(0, world.num_entities, size=6)))
            for u in range(60)
        }
        good = PreferenceStore(
            rng.normal(size=(world.num_entities, 6)), head_size=16
        ).build(sequences, world.num_users)
        system.runtime.activate_preferences(good, version=1)
        system.runtime.activate_preferences(
            _degenerate_store(world, sequences), version=2
        )
        # Monitor-only mode: the bad artifact IS active, but the critical
        # report and alert still exist for the operator.
        assert system.runtime.versions()["preference_version"] == 2
        report = system.registry.drift_report("preferences", 2)
        assert report.severity == SEVERITY_CRITICAL and not report.gated
        assert system.alerts.has_critical()
