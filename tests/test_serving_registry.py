"""Artifact registry, snapshot readers, and preference store artifacts."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.graph import EntityGraph, GraphStore
from repro.preference.store import PreferenceStore
from repro.serving import KIND_GRAPH, KIND_PREFERENCES, ArtifactRegistry
from repro.text.sequence_extractor import UserEntitySequence


@pytest.fixture()
def store(tmp_path):
    store = GraphStore(tmp_path / "store", num_nodes=10)
    store.put_edges([(0, 1), (1, 2)], weights=[0.9, 0.8])
    store.commit_version("week-0")
    return store


def built_preferences(num_users=6, num_entities=10, seed=0) -> PreferenceStore:
    rng = np.random.default_rng(seed)
    embeddings = rng.normal(size=(num_entities, 4))
    sequences = {
        u: UserEntitySequence(u, list(rng.integers(0, num_entities, size=5)))
        for u in range(num_users - 1)  # leave one user uncovered
    }
    return PreferenceStore(embeddings, head_size=4).build(sequences, num_users)


class TestSnapshotReader:
    def test_reader_matches_committed_version(self, store):
        reader = store.snapshot_reader()
        assert reader.version == 1
        assert reader.num_edges == 2
        nbrs, weights = reader.neighbors(1)
        assert sorted(nbrs.tolist()) == [0, 2]

    def test_reader_is_pinned_against_later_writes(self, store):
        reader = store.snapshot_reader(1)
        store.put_edges([(3, 4)], weights=[0.5])
        store.commit_version("week-1")
        assert reader.num_edges == 2  # unchanged
        nbrs, _ = reader.neighbors(3)
        assert len(nbrs) == 0

    def test_reader_survives_compaction(self, store):
        reader = store.snapshot_reader(1)
        store.put_edges([(3, 4)])
        store.commit_version("week-1")
        store.compact(keep_last=1)  # deletes snapshot 1 from disk
        assert reader.num_edges == 2  # arrays were loaded at construction

    def test_reader_graph_materialisation(self, store):
        graph = store.snapshot_reader(1).graph()
        assert isinstance(graph, EntityGraph)
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1)

    def test_unknown_version_raises(self, store):
        with pytest.raises(StorageError):
            store.snapshot_reader(7)

    def test_empty_store_raises(self, tmp_path):
        empty = GraphStore(tmp_path / "empty", num_nodes=5)
        with pytest.raises(StorageError):
            empty.snapshot_reader()


class TestPreferenceArtifact:
    def test_save_load_roundtrip(self, tmp_path):
        store = built_preferences()
        store.version_tag = "daily-1"
        path = store.save(tmp_path / "prefs")
        assert path.suffix == ".npz"
        loaded = PreferenceStore.load(path)
        assert loaded.version_tag == "daily-1"
        np.testing.assert_allclose(loaded.user_matrix, store.user_matrix)
        np.testing.assert_allclose(loaded.covered_users, store.covered_users)
        original = store.top_users_for_entities([0, 3], k=3)
        reloaded = loaded.top_users_for_entities([0, 3], k=3)
        assert [u.user_id for u in original] == [u.user_id for u in reloaded]
        assert [u.score for u in original] == pytest.approx([u.score for u in reloaded])

    def test_save_requires_built(self, tmp_path):
        from repro.errors import NotFittedError

        store = PreferenceStore(np.eye(4))
        with pytest.raises(NotFittedError):
            store.save(tmp_path / "prefs")

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            PreferenceStore.load(tmp_path / "nope.npz")


class TestRegistry:
    def test_publish_graph_from_store(self, store):
        registry = ArtifactRegistry()
        record = registry.publish_graph(store)
        assert record.kind == KIND_GRAPH
        assert record.version == 1
        assert record.tag == "week-0"
        assert record.source == "store"
        reader = registry.open_graph()
        assert reader.version == 1 and reader.num_edges == 2

    def test_publish_memory_graph(self):
        registry = ArtifactRegistry()
        graph = EntityGraph.from_edge_list(5, [(0, 1)], [0.5], [0])
        record = registry.publish_graph(graph, tag="week-0")
        assert record.source == "memory"
        assert registry.open_graph(record.version) is graph

    def test_publish_preferences_in_memory(self):
        registry = ArtifactRegistry()
        prefs = built_preferences()
        record = registry.publish_preferences(prefs)
        assert record.kind == KIND_PREFERENCES
        assert record.version == 1
        assert prefs.version_tag == record.tag
        assert registry.open_preferences() is prefs

    def test_publish_preferences_durable(self, tmp_path):
        registry = ArtifactRegistry(root=tmp_path / "artifacts")
        prefs = built_preferences()
        record = registry.publish_preferences(prefs, tag="daily-A")
        assert record.source == "file"
        loaded = registry.open_preferences(record.version)
        assert loaded is not prefs  # reopened from disk
        np.testing.assert_allclose(loaded.user_matrix, prefs.user_matrix)

    def test_versions_are_monotonic(self, store):
        registry = ArtifactRegistry()
        registry.publish_graph(store, version=1)
        with pytest.raises(StorageError):
            registry.publish_graph(store, version=1)  # not newer

    def test_latest_and_get_record(self):
        registry = ArtifactRegistry()
        assert registry.latest(KIND_GRAPH) is None
        p1 = registry.publish_preferences(built_preferences(seed=1))
        p2 = registry.publish_preferences(built_preferences(seed=2))
        assert registry.latest(KIND_PREFERENCES).version == p2.version
        assert registry.get_record(KIND_PREFERENCES, p1.version) is p1
        with pytest.raises(StorageError):
            registry.get_record(KIND_PREFERENCES, 99)

    def test_unknown_kind_raises(self):
        with pytest.raises(StorageError):
            ArtifactRegistry().records("embeddings")

    def test_rejects_second_store(self, store, tmp_path):
        registry = ArtifactRegistry()
        registry.publish_graph(store)
        other = GraphStore(tmp_path / "other", num_nodes=10)
        other.put_edges([(0, 1)])
        other.commit_version()
        with pytest.raises(StorageError):
            registry.publish_graph(other)
