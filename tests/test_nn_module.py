"""Module base class: parameter discovery, modes, state dicts."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Dropout, Linear, MLP, Module, ModuleList
from repro.tensor import Tensor


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(3, 2, rng=0)
        self.blocks = ModuleList([Linear(2, 2, rng=1), Linear(2, 1, rng=2)])
        self.scale = Tensor(np.ones(1), requires_grad=True)
        self.buffer = Tensor(np.zeros(1))  # not trainable: excluded

    def forward(self, x):
        x = self.linear(x)
        for block in self.blocks:
            x = block(x)
        return x * self.scale


class TestParameterDiscovery:
    def test_counts_nested_parameters(self):
        m = Nested()
        names = dict(m.named_parameters())
        assert "linear.weight" in names
        assert "linear.bias" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert "scale" in names
        assert "buffer" not in names
        # 3 linears × 2 params + scale
        assert len(m.parameters()) == 7

    def test_num_parameters(self):
        m = Linear(3, 2, rng=0)
        assert m.num_parameters() == 3 * 2 + 2

    def test_zero_grad_clears(self):
        m = Nested()
        out = m(Tensor(np.ones((4, 3))))
        (out * out).mean().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestModes:
    def test_train_eval_propagates(self):
        m = MLP([4, 8, 2], rng=0, dropout=0.5)
        assert m.training
        m.eval()
        assert all(not mod.training for mod in m.modules())
        m.train()
        assert all(mod.training for mod in m.modules())

    def test_dropout_respects_eval(self):
        d = Dropout(0.9, rng=0)
        x = Tensor(np.ones(1000))
        d.eval()
        np.testing.assert_allclose(d(x).data, x.data)
        d.train()
        assert (d(x).data == 0).sum() > 500


class TestStateDict:
    def test_round_trip(self):
        a = Nested()
        b = Nested()
        # Make them differ first.
        for p in b.parameters():
            p.data += 1.0
        b.load_state_dict(a.state_dict())
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_allclose(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        m = Linear(2, 2, rng=0)
        state = m.state_dict()
        state["weight"][...] = 99.0
        assert not np.any(m.weight.data == 99.0)

    def test_missing_key_raises(self):
        m = Linear(2, 2, rng=0)
        state = m.state_dict()
        del state["bias"]
        with pytest.raises(ShapeError):
            m.load_state_dict(state)

    def test_unexpected_key_raises(self):
        m = Linear(2, 2, rng=0)
        state = m.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(ShapeError):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        m = Linear(2, 2, rng=0)
        state = m.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ShapeError):
            m.load_state_dict(state)


class TestModuleList:
    def test_append_iter_len_getitem(self):
        ml = ModuleList()
        ml.append(Linear(1, 1, rng=0))
        ml.append(Linear(1, 1, rng=1))
        assert len(ml) == 2
        assert isinstance(ml[1], Linear)
        assert len(list(ml)) == 2
