"""Functional ops: gradchecks against finite differences, reference values."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy.special import logsumexp as scipy_lse
from scipy.special import softmax as scipy_softmax

from repro.tensor import (
    Tensor,
    abs_,
    clip,
    concat,
    dropout,
    exp,
    gather_rows,
    gelu,
    leaky_relu,
    log,
    log_softmax,
    logsumexp,
    max_,
    maximum,
    relu,
    scatter_mean,
    scatter_sum,
    segment_softmax,
    sigmoid,
    softmax,
    sqrt,
    stack,
    tanh,
    where_const,
)

from helpers import assert_gradcheck


class TestElementwise:
    @pytest.mark.parametrize(
        "op",
        [exp, sigmoid, tanh, relu, gelu, leaky_relu],
        ids=["exp", "sigmoid", "tanh", "relu", "gelu", "leaky_relu"],
    )
    def test_gradcheck(self, op, rng):
        a = rng.normal(size=(3, 4)) + 0.05  # avoid relu kink at 0
        assert_gradcheck(lambda x: (op(x) ** 2).sum(), a)

    def test_log_sqrt_gradcheck(self, rng):
        a = np.abs(rng.normal(size=(3, 3))) + 0.5
        assert_gradcheck(lambda x: log(x).sum(), a)
        assert_gradcheck(lambda x: sqrt(x).sum(), a)

    def test_sigmoid_extreme_values_stable(self):
        out = sigmoid(Tensor([-1000.0, 1000.0]))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)
        assert np.isfinite(out.data).all()

    def test_abs_gradcheck(self, rng):
        a = rng.normal(size=(6,)) + 0.2
        assert_gradcheck(lambda x: abs_(x).sum(), a)

    def test_clip_forward_and_grad_mask(self):
        x = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_gradcheck(self, rng):
        a = rng.normal(size=(5,))
        b = rng.normal(size=(5,))
        assert_gradcheck(lambda x: maximum(x, Tensor(b)).sum(), a)

    def test_where_const(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        cond = np.array([True, False, True])
        out = where_const(cond, x, -9.0)
        np.testing.assert_allclose(out.data, [1.0, -9.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0])


class TestNormalisations:
    def test_softmax_matches_scipy(self, rng):
        a = rng.normal(size=(4, 6))
        np.testing.assert_allclose(softmax(Tensor(a), axis=1).data, scipy_softmax(a, axis=1))

    def test_softmax_rows_sum_to_one(self, rng):
        a = rng.normal(size=(5, 7)) * 10
        np.testing.assert_allclose(softmax(Tensor(a)).data.sum(axis=-1), np.ones(5))

    def test_softmax_gradcheck(self, rng):
        a = rng.normal(size=(3, 4))
        w = rng.normal(size=(3, 4))
        assert_gradcheck(lambda x: (softmax(x, axis=-1) * w).sum(), a)

    def test_log_softmax_matches_scipy(self, rng):
        a = rng.normal(size=(3, 5))
        expected = a - scipy_lse(a, axis=-1, keepdims=True)
        np.testing.assert_allclose(log_softmax(Tensor(a)).data, expected)

    def test_log_softmax_gradcheck(self, rng):
        a = rng.normal(size=(2, 5))
        w = rng.normal(size=(2, 5))
        assert_gradcheck(lambda x: (log_softmax(x) * w).sum(), a)

    @given(arrays(np.float64, (3, 4), elements=st.floats(-50, 50)))
    @settings(max_examples=30, deadline=None)
    def test_logsumexp_matches_scipy(self, a):
        np.testing.assert_allclose(
            logsumexp(Tensor(a), axis=1).data, scipy_lse(a, axis=1), atol=1e-10
        )

    def test_logsumexp_gradcheck(self, rng):
        a = rng.normal(size=(3, 4))
        assert_gradcheck(lambda x: logsumexp(x, axis=0).sum(), a)

    def test_max_gradcheck_no_ties(self, rng):
        a = rng.permutation(20).astype(np.float64).reshape(4, 5)
        assert_gradcheck(lambda x: max_(x, axis=1).sum(), a)

    def test_max_splits_tied_gradient(self):
        x = Tensor([[2.0, 2.0, 1.0]], requires_grad=True)
        max_(x, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])


class TestShapeOps:
    def test_concat_gradcheck(self, rng):
        a = rng.normal(size=(3, 2))
        b = rng.normal(size=(3, 4))
        assert_gradcheck(lambda x: (concat([x, Tensor(b)], axis=1) ** 2).sum(), a)

    def test_stack_gradcheck(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3))
        assert_gradcheck(lambda x: (stack([x, Tensor(b)], axis=0) ** 2).sum(), a)

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_scales_kept_values(self, rng):
        x = Tensor(np.ones((2000,)))
        out = dropout(x, 0.25, rng, training=True)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 1.0 / 0.75)
        assert abs(out.data.mean() - 1.0) < 0.05


class TestGatherScatter:
    def test_gather_rows_forward(self, rng):
        a = rng.normal(size=(5, 3))
        idx = np.array([4, 0, 4])
        np.testing.assert_allclose(gather_rows(Tensor(a), idx).data, a[idx])

    def test_gather_rows_gradcheck(self, rng):
        a = rng.normal(size=(5, 3))
        idx = np.array([0, 2, 2, 1])
        assert_gradcheck(lambda x: (gather_rows(x, idx) ** 2).sum(), a)

    def test_scatter_sum_inverse_of_gather(self, rng):
        a = rng.normal(size=(4, 2))
        idx = np.array([1, 1, 3, 0])
        out = scatter_sum(Tensor(a), idx, 5)
        expected = np.zeros((5, 2))
        np.add.at(expected, idx, a)
        np.testing.assert_allclose(out.data, expected)

    def test_scatter_sum_gradcheck(self, rng):
        a = rng.normal(size=(6, 2))
        idx = np.array([0, 0, 1, 2, 2, 2])
        assert_gradcheck(lambda x: (scatter_sum(x, idx, 3) ** 2).sum(), a)

    def test_scatter_mean_empty_bucket_zero(self, rng):
        a = rng.normal(size=(3, 2))
        out = scatter_mean(Tensor(a), np.array([0, 0, 2]), 4)
        np.testing.assert_allclose(out.data[1], [0.0, 0.0])
        np.testing.assert_allclose(out.data[3], [0.0, 0.0])
        np.testing.assert_allclose(out.data[0], a[:2].mean(axis=0))

    def test_segment_softmax_normalises_per_segment(self, rng):
        logits = Tensor(rng.normal(size=8))
        seg = np.array([0, 0, 0, 1, 1, 2, 2, 2])
        out = segment_softmax(logits, seg, 3).data
        for s in range(3):
            assert abs(out[seg == s].sum() - 1.0) < 1e-12

    def test_segment_softmax_2d_heads(self, rng):
        logits = Tensor(rng.normal(size=(6, 2)))
        seg = np.array([0, 0, 1, 1, 1, 2])
        out = segment_softmax(logits, seg, 3).data
        for s in range(3):
            np.testing.assert_allclose(out[seg == s].sum(axis=0), [1.0, 1.0])

    def test_segment_softmax_gradcheck(self, rng):
        a = rng.normal(size=(7,))
        seg = np.array([0, 0, 1, 1, 1, 2, 2])
        w = rng.normal(size=7)
        assert_gradcheck(lambda x: (segment_softmax(x, seg, 3) * w).sum(), a)

    def test_segment_softmax_empty_segment_ok(self, rng):
        out = segment_softmax(Tensor(rng.normal(size=3)), np.array([0, 0, 2]), 4)
        assert np.isfinite(out.data).all()

    @given(st.integers(2, 6), st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_scatter_then_gather_roundtrip_counts(self, buckets, n):
        rng = np.random.default_rng(buckets * 100 + n)
        idx = rng.integers(0, buckets, size=n)
        ones = Tensor(np.ones((n, 1)))
        counts = scatter_sum(ones, idx, buckets).data[:, 0]
        np.testing.assert_allclose(counts, np.bincount(idx, minlength=buckets))
