"""VersionedLRUCache: LRU semantics, version scoping, stats."""

import pytest

from repro.errors import ConfigError
from repro.serving import VersionedLRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = VersionedLRUCache(4)
        assert cache.get(1, "a") is None
        cache.put(1, "a", "value")
        assert cache.get(1, "a") == "value"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            VersionedLRUCache(-1)

    def test_zero_capacity_disables_cache(self):
        cache = VersionedLRUCache(0)
        cache.put(1, "a", "value")
        assert cache.get(1, "a") is None
        assert len(cache) == 0

    def test_put_refreshes_existing_key(self):
        cache = VersionedLRUCache(4)
        cache.put(1, "a", "old")
        cache.put(1, "a", "new")
        assert cache.get(1, "a") == "new"
        assert len(cache) == 1


class TestLRU:
    def test_least_recently_used_is_evicted(self):
        cache = VersionedLRUCache(2)
        cache.put(1, "a", 1)
        cache.put(1, "b", 2)
        cache.get(1, "a")  # "a" is now most recently used
        cache.put(1, "c", 3)
        assert cache.get(1, "b") is None  # evicted
        assert cache.get(1, "a") == 1
        assert cache.get(1, "c") == 3
        assert cache.stats()["evictions"] == 1

    def test_capacity_never_exceeded(self):
        cache = VersionedLRUCache(3)
        for i in range(10):
            cache.put(1, i, i)
        assert len(cache) == 3

    def test_eviction_counter_exact_under_sustained_full_pressure(self):
        # Every insert beyond capacity evicts exactly one entry, and
        # nothing else moves the counter: N puts into a full K-slot cache
        # must report exactly N - K evictions.
        cache = VersionedLRUCache(4)
        for i in range(20):
            cache.put(1, i, i)
        stats = cache.stats()
        assert stats["evictions"] == 16
        assert stats["size"] == 4

    def test_refresh_of_existing_key_is_not_an_eviction(self):
        cache = VersionedLRUCache(2)
        cache.put(1, "a", 1)
        cache.put(1, "b", 2)
        for _ in range(5):
            cache.put(1, "a", "updated")  # in-place refresh, cache stays full
        assert cache.stats()["evictions"] == 0
        assert len(cache) == 2

    def test_purge_and_clear_do_not_count_as_evictions(self):
        cache = VersionedLRUCache(4)
        cache.put(1, "a", 1)
        cache.put(2, "b", 2)
        cache.purge_version(1)
        cache.clear()
        assert cache.stats()["evictions"] == 0

    def test_eviction_counter_with_interleaved_hits(self):
        # Hits reorder recency but never evict; only the overflowing puts do.
        cache = VersionedLRUCache(2)
        cache.put(1, "a", 1)
        cache.put(1, "b", 2)
        cache.get(1, "a")
        cache.put(1, "c", 3)  # evicts "b" (LRU), not "a"
        cache.get(1, "a")
        cache.put(1, "d", 4)  # evicts "c"
        stats = cache.stats()
        assert stats["evictions"] == 2
        assert cache.get(1, "a") == 1


class TestVersionScoping:
    def test_same_key_different_versions_are_distinct(self):
        cache = VersionedLRUCache(4)
        cache.put(1, "query", "old-graph-answer")
        cache.put(2, "query", "new-graph-answer")
        assert cache.get(1, "query") == "old-graph-answer"
        assert cache.get(2, "query") == "new-graph-answer"

    def test_new_version_never_sees_old_entries(self):
        cache = VersionedLRUCache(4)
        cache.put(1, "query", "stale")
        assert cache.get(2, "query") is None

    def test_purge_version_drops_only_that_version(self):
        cache = VersionedLRUCache(8)
        cache.put(1, "a", 1)
        cache.put(1, "b", 2)
        cache.put(2, "a", 3)
        assert cache.purge_version(1) == 2
        assert cache.get(1, "a") is None
        assert cache.get(2, "a") == 3

    def test_clear(self):
        cache = VersionedLRUCache(4)
        cache.put(1, "a", 1)
        cache.clear()
        assert len(cache) == 0


class TestStats:
    def test_hit_rate(self):
        cache = VersionedLRUCache(4)
        cache.put(1, "a", 1)
        cache.get(1, "a")
        cache.get(1, "a")
        cache.get(1, "missing")
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_empty_cache_hit_rate_is_zero(self):
        assert VersionedLRUCache(4).stats()["hit_rate"] == 0.0
