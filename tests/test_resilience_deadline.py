"""Deadline: absolute budgets on the injectable monotonic clock."""

from __future__ import annotations

import pytest

from repro.errors import DeadlineExceededError
from repro.obs import ManualClock
from repro.resilience import Deadline


def test_fresh_deadline_has_full_budget():
    clock = ManualClock()
    deadline = Deadline.after(1.5, clock=clock)
    assert deadline.remaining() == pytest.approx(1.5)
    assert not deadline.expired
    deadline.check("expand")  # no raise


def test_expires_exactly_when_the_clock_says():
    clock = ManualClock()
    deadline = Deadline.after(1.0, clock=clock)
    clock.advance(0.999)
    assert not deadline.expired
    clock.advance(0.001)
    assert deadline.expired
    assert deadline.remaining() == pytest.approx(0.0)


def test_check_raises_with_overrun_and_budget():
    clock = ManualClock()
    deadline = Deadline.after(0.5, clock=clock)
    clock.advance(0.75)
    with pytest.raises(DeadlineExceededError) as excinfo:
        deadline.check("target")
    message = str(excinfo.value)
    assert "target" in message
    assert "250.0 ms" in message  # overrun
    assert "budget 500 ms" in message


def test_non_positive_timeout_rejected():
    with pytest.raises(ValueError):
        Deadline.after(0.0, clock=ManualClock())
    with pytest.raises(ValueError):
        Deadline.after(-1.0, clock=ManualClock())


def test_shared_deadline_spans_phases():
    # One budget across expand + target: the second phase sees what the
    # first phase spent.
    clock = ManualClock()
    deadline = Deadline.after(1.0, clock=clock)
    clock.advance(0.6)  # expansion cost
    deadline.check("expand")
    clock.advance(0.6)  # scoring cost pushes past the budget
    with pytest.raises(DeadlineExceededError):
        deadline.check("target")
