"""Test utilities: finite-difference gradient checking."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def numeric_gradient(fn, x0: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` of a Tensor."""
    x = x0.copy()
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(Tensor(x)).data)
        flat[i] = original - eps
        minus = float(fn(Tensor(x)).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def assert_gradcheck(fn, x0: np.ndarray, tol: float = 1e-5) -> None:
    """Compare autograd and numeric gradients of scalar ``fn``."""
    x = Tensor(x0.copy(), requires_grad=True)
    out = fn(x)
    out.backward()
    numeric = numeric_gradient(fn, x0)
    error = np.abs(numeric - x.grad).max()
    assert error < tol, f"gradcheck failed: max abs error {error}"
