"""Link-prediction baselines (Table II rows)."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_NAMES,
    HeuristicLinkPredictor,
    drnl_labels,
    evaluate_link_predictor,
    make_baseline,
    pairwise_heuristics,
)
from repro.errors import NotFittedError
from repro.graph import EntityGraph


class TestFactory:
    def test_all_names_constructible(self, candidate):
        for name in BASELINE_NAMES:
            model = make_baseline(name, candidate.node_features.shape[1])
            assert model.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_baseline("GPT", 10)


class TestHeuristics:
    def test_pairwise_features_hand_case(self):
        # Triangle 0-1-2 plus pendant 3 on 2.
        g = EntityGraph.from_edge_list(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        feats = pairwise_heuristics(g, np.array([[0, 1], [0, 3]]))
        # (0,1): common neighbor {2}; (0,3): common neighbor {2}.
        assert feats[0, 0] == 1.0
        assert feats[1, 0] == 1.0
        # Jaccard for (0,1): |{2}| / |{0,1,2}∪... | = 1/3.
        assert feats[0, 1] == pytest.approx(1 / 3)

    def test_adamic_adar_predictor(self, split):
        model = HeuristicLinkPredictor().fit(split)
        result = evaluate_link_predictor(model, split)
        assert result.auc > 0.6  # structure-only reference beats chance

    def test_drnl_target_nodes_get_label_one(self):
        dist_u = np.array([0, 1, 2])
        dist_v = np.array([1, 0, 2])
        labels = drnl_labels(dist_u, dist_v)
        assert labels[0] == 1 and labels[1] == 1
        assert labels[2] > 1

    def test_drnl_caps(self):
        labels = drnl_labels(np.array([8]), np.array([8]))
        assert labels[0] <= 10


@pytest.mark.parametrize("name", ["DeepWalk", "Node2Vec", "VGAE", "GeniePath", "CompGCN", "PaGNN"])
def test_baseline_beats_chance(name, split, candidate):
    model = make_baseline(name, candidate.node_features.shape[1])
    # Shrink training cost where the knob exists.
    if hasattr(model, "epochs"):
        model.epochs = min(model.epochs, 25)
    model.fit(split, candidate.node_features)
    result = evaluate_link_predictor(model, split)
    assert result.auc > 0.6, f"{name} AUC {result.auc}"


def test_seal_beats_chance(split, candidate):
    model = make_baseline("SEAL", candidate.node_features.shape[1])
    model.max_train_pairs = 400
    model.epochs = 2
    model.fit(split, candidate.node_features)
    result = evaluate_link_predictor(model, split)
    assert result.auc > 0.6


def test_gnn_predictor_not_fitted_guard(candidate):
    model = make_baseline("GeniePath", candidate.node_features.shape[1])
    with pytest.raises(NotFittedError):
        model.predict_pairs(np.array([[0, 1]]))


def test_embedding_predictor_not_fitted_guard():
    model = make_baseline("DeepWalk", 8)
    with pytest.raises(NotFittedError):
        model.predict_pairs(np.array([[0, 1]]))
