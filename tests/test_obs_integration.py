"""End-to-end observability: one request sequence, verified signals.

Drives an ``expand`` → ``expand`` → ``target`` sequence through the API
facade over hand-activated artifacts (no TRMP training) and asserts the
exact counter deltas, the cache miss-then-hit pair, correctly parented
trace spans, and the frozen-clock timestamps the injectable clock enables.
"""

import json

import numpy as np
import pytest

from repro.graph import EntityGraph
from repro.obs import ManualClock, Observability
from repro.online import EGLSystem
from repro.online.api import EGLService, ExpandRequest, TargetRequest
from repro.online.reasoning import GraphReasoner
from repro.preference.store import PreferenceStore
from repro.text.sequence_extractor import UserEntitySequence


@pytest.fixture()
def frozen_service(world):
    """EGLService on a ManualClock with hand-activated artifacts."""
    obs = Observability(clock=ManualClock(start=5_000.0))
    system = EGLSystem(world, obs=obs)
    graph = EntityGraph.from_edge_list(
        world.num_entities, [(0, 1), (1, 2)], [0.9, 0.8], [0, 0]
    )
    reasoner = GraphReasoner(graph, system.pipeline.entity_dict)
    system.runtime.activate_graph(reasoner, version=1, tag="week-0")
    rng = np.random.default_rng(0)
    embeddings = rng.normal(size=(world.num_entities, 6))
    sequences = {
        u: UserEntitySequence(u, list(rng.integers(0, world.num_entities, size=6)))
        for u in range(30)
    }
    prefs = PreferenceStore(embeddings, head_size=16).build(sequences, world.num_users)
    system.runtime.activate_preferences(prefs, version=1, tag="daily-1")
    obs.tracer.clear()  # only request traces from here on
    return EGLService(system)


def run_sequence(service, world):
    phrase = world.entities[0].name
    cold = service.expand(ExpandRequest(phrases=[phrase], depth=2))
    warm = service.expand(ExpandRequest(phrases=[phrase], depth=2))
    ids = [e["entity_id"] for e in cold.payload["entities"]]
    target = service.target(TargetRequest(entity_ids=ids, k=5))
    return cold, warm, target


class TestCounterDeltas:
    def test_request_counters_and_cache_pair(self, frozen_service, world):
        metrics = frozen_service.obs.metrics
        cold, warm, target = run_sequence(frozen_service, world)
        assert cold.ok and warm.ok and target.ok

        assert metrics.get_value("api_requests_total", endpoint="expand", status="ok") == 2
        assert metrics.get_value("api_requests_total", endpoint="target", status="ok") == 1
        assert metrics.get_value("api_requests_total", endpoint="expand", status="error") == 0

        # The identical second expansion is the hit of a miss-then-hit pair.
        assert metrics.get_value("serving_expansion_cache_misses_total") == 1
        assert metrics.get_value("serving_expansion_cache_hits_total") == 1
        assert metrics.get_value("serving_expansion_cache_size") == 1

    def test_error_requests_counted_separately(self, frozen_service, world):
        metrics = frozen_service.obs.metrics
        response = frozen_service.expand(
            ExpandRequest(phrases=[world.entities[0].name], depth=-1)
        )
        assert not response.ok
        assert metrics.get_value("api_requests_total", endpoint="expand", status="error") == 1
        assert metrics.get_value("api_requests_total", endpoint="expand", status="ok") == 0

    def test_latency_histograms(self, frozen_service, world):
        run_sequence(frozen_service, world)
        snapshot = frozen_service.obs.metrics.snapshot()
        expand = {
            s["labels"]["outcome"]: s
            for s in snapshot["histograms"]["serving_expand_seconds"]
        }
        # Only the computed expansion is sampled: the cache-hit path stays
        # obs-free (hits are counted by the cache's own collector instead).
        assert expand["computed"]["count"] == 1
        assert set(expand) == {"computed"}
        api = snapshot["histograms"]["api_request_seconds"]
        by_endpoint = {s["labels"]["endpoint"]: s for s in api}
        assert by_endpoint["expand"]["count"] == 2
        assert by_endpoint["target"]["count"] == 1
        assert by_endpoint["expand"]["p50"] is not None
        assert by_endpoint["expand"]["p99"] is not None

    def test_active_version_gauges(self, frozen_service):
        metrics = frozen_service.obs.metrics
        assert metrics.get_value("serving_active_version", kind="graph") == 1
        assert metrics.get_value("serving_active_version", kind="preferences") == 1
        assert metrics.get_value("serving_hot_swaps_total", kind="graph") == 1


class TestTraceParenting:
    def test_cold_expand_trace_nests_compute_under_request(self, frozen_service, world):
        cold, warm, target = run_sequence(frozen_service, world)
        traces = frozen_service.obs.tracer.traces()
        assert len(traces) == 3  # one trace per request

        for spans in traces.values():
            roots = [s for s in spans if s.parent_id is None]
            assert len(roots) == 1  # every request is exactly one trace

        # The *cold* expand computed: its trace holds the compute child.
        cold_spans = next(
            spans for spans in traces.values()
            if any(s.name == "runtime.expand_compute" for s in spans)
        )
        compute = [s for s in cold_spans if s.name == "runtime.expand_compute"]
        assert len(compute) == 1
        root = next(s for s in cold_spans if s.parent_id is None)
        assert root.name == "api.expand"
        assert compute[0].parent_id == root.span_id
        assert compute[0].trace_id == root.trace_id

        target_spans = next(
            spans for spans in traces.values()
            if any(s.name == "api.target" for s in spans)
        )
        child = next(s for s in target_spans if s.name == "runtime.target")
        assert child.parent_id == next(
            s for s in target_spans if s.parent_id is None
        ).span_id

    def test_warm_expand_trace_has_no_compute_span(self, frozen_service, world):
        run_sequence(frozen_service, world)
        traces = frozen_service.obs.tracer.traces()
        expand_traces = [
            spans for spans in traces.values()
            if any(s.name == "api.expand" for s in spans)
        ]
        assert len(expand_traces) == 2
        compute_counts = sorted(
            sum(1 for s in spans if s.name == "runtime.expand_compute")
            for spans in expand_traces
        )
        assert compute_counts == [0, 1]  # warm hit never recomputes


class TestFrozenClock:
    def test_elapsed_and_timestamp_are_deterministic(self, frozen_service, world):
        response = frozen_service.expand(
            ExpandRequest(phrases=[world.entities[0].name], depth=2)
        )
        assert response.elapsed_ms == 0.0  # the clock never moved
        assert response.timestamp == 5_000.0

    def test_advancing_the_clock_is_observed(self, frozen_service, world):
        clock = frozen_service.obs.clock
        clock.advance(1.5)
        response = frozen_service.expand(
            ExpandRequest(phrases=[world.entities[0].name], depth=2)
        )
        assert response.timestamp == 5_001.5


class TestHealthEmbedsMetrics:
    def test_health_payload_has_snapshot_and_swaps(self, frozen_service, world):
        run_sequence(frozen_service, world)
        response = frozen_service.health()
        assert response.ok
        payload = response.payload
        json.dumps(payload)  # still fully serialisable
        metrics = payload["metrics"]
        assert metrics["enabled"]
        assert "api_requests_total" in metrics["counters"]
        assert "serving_expand_seconds" in metrics["histograms"]
        swaps = payload["runtime"]["recent_swaps"]
        assert [e["kind"] for e in swaps] == ["graph", "preferences"]
        assert swaps[0]["old_version"] is None and swaps[0]["new_version"] == 1

    def test_metrics_text_exposition(self, frozen_service, world):
        run_sequence(frozen_service, world)
        text = frozen_service.metrics_text()
        assert 'api_requests_total{endpoint="expand",status="ok"} 2' in text
        assert "serving_expansion_cache_hits_total 1" in text
        assert 'serving_active_version{kind="graph"} 1' in text
